//! Theory checks: measured telemetry vs. the paper's queueing predictions.
//!
//! §4 of the paper gives closed forms for what a healthy simulation must
//! show: an M/M/∞ delaying node holds Poisson(ρ = λ/μ) packets (so its
//! time-weighted mean occupancy is ρ — by Little's law the mean holds for
//! *any* stationary arrival process), and a finite buffer of `k` slots
//! under Poisson load blocks an `erlang_b(ρ, k)` fraction of arrivals;
//! RCAD converts exactly that blocked fraction into preemptions. Each
//! [`TheoryCheck`] compares one measured statistic against one such
//! prediction and flags deviations beyond a [`TheoryTolerance`].

use serde::{Deserialize, Serialize};
use tempriv_queueing::erlang::erlang_b;
use tempriv_queueing::poisson::Poisson;

/// Tolerances for the theory comparisons.
///
/// Finite runs carry transient (cold-start/drain) bias and sampling
/// noise, so the defaults are loose enough for a few thousand packets yet
/// tight enough to flag a mis-tuned scenario (e.g. a λ or μ off by 2×).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TheoryTolerance {
    /// Max relative deviation of mean occupancy from ρ.
    pub occupancy_rel: f64,
    /// Max absolute deviation of a drop/preemption fraction from
    /// `erlang_b(ρ, k)`.
    pub loss_abs: f64,
    /// Max L1 distance between a sampled distribution and its predicted
    /// law — the occupancy PMF vs. Poisson(ρ), and the binned per-hop
    /// residence mass vs. Exp(μ) (see
    /// [`TheoryCheck::exponential_residence`]).
    pub pmf_l1: f64,
}

impl Default for TheoryTolerance {
    fn default() -> Self {
        TheoryTolerance {
            occupancy_rel: 0.15,
            loss_abs: 0.05,
            pmf_l1: 0.25,
        }
    }
}

/// One comparison between a measured statistic and a theoretical value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TheoryCheck {
    /// What was checked, e.g. `node 0 mean occupancy vs rho`.
    pub name: String,
    /// The closed-form prediction.
    pub predicted: f64,
    /// The measured statistic.
    pub measured: f64,
    /// Deviation in the units the tolerance is expressed in (relative
    /// for occupancy, absolute for loss fractions, L1 for PMFs).
    pub deviation: f64,
    /// The tolerance the deviation was compared against.
    pub tolerance: f64,
    /// `deviation <= tolerance`.
    pub passed: bool,
}

impl TheoryCheck {
    fn new(name: String, predicted: f64, measured: f64, deviation: f64, tolerance: f64) -> Self {
        TheoryCheck {
            name,
            predicted,
            measured,
            deviation,
            tolerance,
            passed: deviation <= tolerance,
        }
    }

    /// Mean-occupancy check: measured time-weighted mean vs. ρ, judged on
    /// relative deviation. Valid for any stationary arrival process by
    /// Little's law (`N̄ = λ·(1/μ)`).
    ///
    /// # Panics
    ///
    /// Panics if `rho` is non-positive or not finite.
    #[must_use]
    pub fn mean_occupancy(
        name: impl Into<String>,
        rho: f64,
        measured: f64,
        tol: &TheoryTolerance,
    ) -> Self {
        assert!(
            rho.is_finite() && rho > 0.0,
            "rho must be positive, got {rho}"
        );
        let deviation = (measured - rho).abs() / rho;
        TheoryCheck::new(name.into(), rho, measured, deviation, tol.occupancy_rel)
    }

    /// Erlang-loss check: a measured loss fraction (drops or RCAD
    /// preemptions over arrivals) vs. `erlang_b(rho, k)`, judged on
    /// absolute deviation.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is non-positive or not finite (see [`erlang_b`]).
    #[must_use]
    pub fn erlang_loss(
        name: impl Into<String>,
        rho: f64,
        k: u32,
        measured_fraction: f64,
        tol: &TheoryTolerance,
    ) -> Self {
        let predicted = erlang_b(rho, k);
        let deviation = (measured_fraction - predicted).abs();
        TheoryCheck::new(
            name.into(),
            predicted,
            measured_fraction,
            deviation,
            tol.loss_abs,
        )
    }

    /// Occupancy-distribution check: L1 distance between a time-weighted
    /// occupancy PMF (`(depth, fraction)` pairs) and Poisson(ρ). Only
    /// meaningful for M/M/∞ nodes (Poisson arrivals, exponential delays,
    /// no admission control).
    ///
    /// # Panics
    ///
    /// Panics if `rho` is non-positive or not finite.
    #[must_use]
    pub fn poisson_occupancy_pmf(
        name: impl Into<String>,
        rho: f64,
        pmf: &[(u64, f64)],
        tol: &TheoryTolerance,
    ) -> Self {
        assert!(
            rho.is_finite() && rho > 0.0,
            "rho must be positive, got {rho}"
        );
        let poisson = Poisson::new(rho);
        // Compare over the union of the measured support and the bulk of
        // the predicted mass; unmatched mass on either side counts fully.
        let k_max = pmf
            .iter()
            .map(|&(k, _)| k)
            .max()
            .unwrap_or(0)
            .max(poisson.quantile(0.9999));
        let mut l1 = 0.0;
        for k in 0..=k_max {
            let measured = pmf
                .iter()
                .find(|&&(depth, _)| depth == k)
                .map_or(0.0, |&(_, p)| p);
            l1 += (measured - poisson.pmf(k)).abs();
        }
        // Mean-matched scalar summary for the report columns.
        let measured_mean: f64 = pmf.iter().map(|&(k, p)| k as f64 * p).sum();
        TheoryCheck::new(name.into(), rho, measured_mean, l1, tol.pmf_l1)
    }

    /// Residence-distribution check: per-hop buffering delays sampled from
    /// a traced run vs. the exponential law Exp(`mean`) the §4 tandem
    /// analysis assumes. The samples are binned over `[0, q₀.₉₉₉₉)` of the
    /// predicted law (20 bins plus an explicit tail bucket) and compared
    /// to the exponential's per-bin mass by L1 distance, judged against
    /// the same distributional tolerance as the occupancy PMF. The scalar
    /// columns carry the predicted vs. sample mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is non-positive or not finite, or if `samples` is
    /// empty.
    #[must_use]
    pub fn exponential_residence(
        name: impl Into<String>,
        mean: f64,
        samples: &[f64],
        tol: &TheoryTolerance,
    ) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "mean must be positive, got {mean}"
        );
        assert!(!samples.is_empty(), "residence check needs samples");
        const BINS: usize = 20;
        // Exp quantile at 0.9999: -mean * ln(1e-4).
        let hi = mean * -(1e-4f64).ln();
        let width = hi / BINS as f64;
        let mut counts = [0u64; BINS];
        let mut tail = 0u64;
        for &x in samples {
            let i = (x / width).floor();
            if i >= 0.0 && (i as usize) < BINS {
                counts[i as usize] += 1;
            } else {
                tail += 1;
            }
        }
        let n = samples.len() as f64;
        let cdf = |x: f64| 1.0 - (-x / mean).exp();
        let mut l1 = 0.0;
        for (i, &c) in counts.iter().enumerate() {
            let lo_edge = i as f64 * width;
            let predicted = cdf(lo_edge + width) - cdf(lo_edge);
            l1 += (c as f64 / n - predicted).abs();
        }
        l1 += (tail as f64 / n - (1.0 - cdf(hi))).abs();
        let sample_mean = samples.iter().sum::<f64>() / n;
        TheoryCheck::new(name.into(), mean, sample_mean, l1, tol.pmf_l1)
    }
}

/// A collection of [`TheoryCheck`]s for one instrumented run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TheoryReport {
    /// The individual comparisons, in evaluation order.
    pub checks: Vec<TheoryCheck>,
}

impl TheoryReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        TheoryReport::default()
    }

    /// Appends a check.
    pub fn push(&mut self, check: TheoryCheck) {
        self.checks.push(check);
    }

    /// `true` when every check passed (vacuously true when empty).
    #[must_use]
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// The checks that exceeded tolerance.
    #[must_use]
    pub fn flagged(&self) -> Vec<&TheoryCheck> {
        self.checks.iter().filter(|c| !c.passed).collect()
    }

    /// Merges another report's checks into this one.
    pub fn extend(&mut self, other: TheoryReport) {
        self.checks.extend(other.checks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_within_tolerance_passes() {
        let tol = TheoryTolerance::default();
        let c = TheoryCheck::mean_occupancy("n0", 15.0, 14.2, &tol);
        assert!(c.passed);
        assert!((c.deviation - 0.8 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn mistuned_occupancy_is_flagged() {
        let tol = TheoryTolerance::default();
        // A 2x-wrong mu shows up as a ~2x-wrong mean.
        let c = TheoryCheck::mean_occupancy("n0", 15.0, 7.4, &tol);
        assert!(!c.passed);
    }

    #[test]
    fn erlang_loss_uses_absolute_deviation() {
        let tol = TheoryTolerance::default();
        let predicted = erlang_b(5.0, 4);
        let c = TheoryCheck::erlang_loss("n0 drops", 5.0, 4, predicted + 0.03, &tol);
        assert!(c.passed);
        let c = TheoryCheck::erlang_loss("n0 drops", 5.0, 4, predicted + 0.2, &tol);
        assert!(!c.passed);
    }

    #[test]
    fn exact_poisson_pmf_has_zero_l1() {
        let tol = TheoryTolerance::default();
        let rho = 3.0;
        let poisson = Poisson::new(rho);
        let pmf: Vec<(u64, f64)> = (0..=20).map(|k| (k, poisson.pmf(k))).collect();
        let c = TheoryCheck::poisson_occupancy_pmf("pmf", rho, &pmf, &tol);
        assert!(c.passed);
        assert!(c.deviation < 1e-6);
        assert!((c.measured - rho).abs() < 1e-3);
    }

    #[test]
    fn shifted_pmf_is_flagged() {
        let tol = TheoryTolerance::default();
        let poisson = Poisson::new(8.0);
        let pmf: Vec<(u64, f64)> = (0..=30).map(|k| (k, poisson.pmf(k))).collect();
        let c = TheoryCheck::poisson_occupancy_pmf("pmf", 2.0, &pmf, &tol);
        assert!(!c.passed);
    }

    #[test]
    fn exponential_samples_pass_residence_check() {
        let tol = TheoryTolerance::default();
        let mut rng = tempriv_sim::rng::RngFactory::new(41).stream(0);
        let samples: Vec<f64> = (0..4000).map(|_| rng.sample_exp(30.0)).collect();
        let c = TheoryCheck::exponential_residence("n1 residence", 30.0, &samples, &tol);
        assert!(c.passed, "deviation {} > {}", c.deviation, c.tolerance);
        assert!(
            (c.measured - 30.0).abs() < 2.0,
            "sample mean {}",
            c.measured
        );
    }

    #[test]
    fn uniform_samples_fail_residence_check() {
        let tol = TheoryTolerance::default();
        let mut rng = tempriv_sim::rng::RngFactory::new(43).stream(0);
        // Uniform on [0, 60) has the right mean but the wrong shape.
        let samples: Vec<f64> = (0..4000).map(|_| rng.sample_uniform(0.0, 60.0)).collect();
        let c = TheoryCheck::exponential_residence("n1 residence", 30.0, &samples, &tol);
        assert!(
            !c.passed,
            "uniform shape must be flagged, L1 {}",
            c.deviation
        );
    }

    #[test]
    fn wrong_mean_fails_residence_check() {
        let tol = TheoryTolerance::default();
        let mut rng = tempriv_sim::rng::RngFactory::new(47).stream(0);
        // Exponential shape but a 3x-wrong mean.
        let samples: Vec<f64> = (0..4000).map(|_| rng.sample_exp(10.0)).collect();
        let c = TheoryCheck::exponential_residence("n1 residence", 30.0, &samples, &tol);
        assert!(!c.passed);
    }

    #[test]
    fn report_aggregates_flags() {
        let tol = TheoryTolerance::default();
        let mut report = TheoryReport::new();
        report.push(TheoryCheck::mean_occupancy("ok", 10.0, 10.1, &tol));
        assert!(report.passed());
        report.push(TheoryCheck::mean_occupancy("bad", 10.0, 20.0, &tol));
        assert!(!report.passed());
        assert_eq!(report.flagged().len(), 1);
        assert_eq!(report.flagged()[0].name, "bad");
    }

    #[test]
    fn report_round_trips_through_json() {
        let tol = TheoryTolerance::default();
        let mut report = TheoryReport::new();
        report.push(TheoryCheck::erlang_loss("loss", 5.0, 4, 0.4, &tol));
        let json = serde_json::to_string(&report).unwrap();
        let back: TheoryReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}

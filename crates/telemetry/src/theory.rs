//! Theory checks: measured telemetry vs. the paper's queueing predictions.
//!
//! §4 of the paper gives closed forms for what a healthy simulation must
//! show: an M/M/∞ delaying node holds Poisson(ρ = λ/μ) packets (so its
//! time-weighted mean occupancy is ρ — by Little's law the mean holds for
//! *any* stationary arrival process), and a finite buffer of `k` slots
//! under Poisson load blocks an `erlang_b(ρ, k)` fraction of arrivals;
//! RCAD converts exactly that blocked fraction into preemptions. Each
//! [`TheoryCheck`] compares one measured statistic against one such
//! prediction and flags deviations beyond a [`TheoryTolerance`].

use serde::{Deserialize, Serialize};
use tempriv_queueing::erlang::erlang_b;
use tempriv_queueing::poisson::Poisson;

/// Tolerances for the theory comparisons.
///
/// Finite runs carry transient (cold-start/drain) bias and sampling
/// noise, so the defaults are loose enough for a few thousand packets yet
/// tight enough to flag a mis-tuned scenario (e.g. a λ or μ off by 2×).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TheoryTolerance {
    /// Max relative deviation of mean occupancy from ρ.
    pub occupancy_rel: f64,
    /// Max absolute deviation of a drop/preemption fraction from
    /// `erlang_b(ρ, k)`.
    pub loss_abs: f64,
    /// Max L1 distance between the sampled occupancy PMF and Poisson(ρ).
    pub pmf_l1: f64,
}

impl Default for TheoryTolerance {
    fn default() -> Self {
        TheoryTolerance {
            occupancy_rel: 0.15,
            loss_abs: 0.05,
            pmf_l1: 0.25,
        }
    }
}

/// One comparison between a measured statistic and a theoretical value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TheoryCheck {
    /// What was checked, e.g. `node 0 mean occupancy vs rho`.
    pub name: String,
    /// The closed-form prediction.
    pub predicted: f64,
    /// The measured statistic.
    pub measured: f64,
    /// Deviation in the units the tolerance is expressed in (relative
    /// for occupancy, absolute for loss fractions, L1 for PMFs).
    pub deviation: f64,
    /// The tolerance the deviation was compared against.
    pub tolerance: f64,
    /// `deviation <= tolerance`.
    pub passed: bool,
}

impl TheoryCheck {
    fn new(name: String, predicted: f64, measured: f64, deviation: f64, tolerance: f64) -> Self {
        TheoryCheck {
            name,
            predicted,
            measured,
            deviation,
            tolerance,
            passed: deviation <= tolerance,
        }
    }

    /// Mean-occupancy check: measured time-weighted mean vs. ρ, judged on
    /// relative deviation. Valid for any stationary arrival process by
    /// Little's law (`N̄ = λ·(1/μ)`).
    ///
    /// # Panics
    ///
    /// Panics if `rho` is non-positive or not finite.
    #[must_use]
    pub fn mean_occupancy(
        name: impl Into<String>,
        rho: f64,
        measured: f64,
        tol: &TheoryTolerance,
    ) -> Self {
        assert!(
            rho.is_finite() && rho > 0.0,
            "rho must be positive, got {rho}"
        );
        let deviation = (measured - rho).abs() / rho;
        TheoryCheck::new(name.into(), rho, measured, deviation, tol.occupancy_rel)
    }

    /// Erlang-loss check: a measured loss fraction (drops or RCAD
    /// preemptions over arrivals) vs. `erlang_b(rho, k)`, judged on
    /// absolute deviation.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is non-positive or not finite (see [`erlang_b`]).
    #[must_use]
    pub fn erlang_loss(
        name: impl Into<String>,
        rho: f64,
        k: u32,
        measured_fraction: f64,
        tol: &TheoryTolerance,
    ) -> Self {
        let predicted = erlang_b(rho, k);
        let deviation = (measured_fraction - predicted).abs();
        TheoryCheck::new(
            name.into(),
            predicted,
            measured_fraction,
            deviation,
            tol.loss_abs,
        )
    }

    /// Occupancy-distribution check: L1 distance between a time-weighted
    /// occupancy PMF (`(depth, fraction)` pairs) and Poisson(ρ). Only
    /// meaningful for M/M/∞ nodes (Poisson arrivals, exponential delays,
    /// no admission control).
    ///
    /// # Panics
    ///
    /// Panics if `rho` is non-positive or not finite.
    #[must_use]
    pub fn poisson_occupancy_pmf(
        name: impl Into<String>,
        rho: f64,
        pmf: &[(u64, f64)],
        tol: &TheoryTolerance,
    ) -> Self {
        assert!(
            rho.is_finite() && rho > 0.0,
            "rho must be positive, got {rho}"
        );
        let poisson = Poisson::new(rho);
        // Compare over the union of the measured support and the bulk of
        // the predicted mass; unmatched mass on either side counts fully.
        let k_max = pmf
            .iter()
            .map(|&(k, _)| k)
            .max()
            .unwrap_or(0)
            .max(poisson.quantile(0.9999));
        let mut l1 = 0.0;
        for k in 0..=k_max {
            let measured = pmf
                .iter()
                .find(|&&(depth, _)| depth == k)
                .map_or(0.0, |&(_, p)| p);
            l1 += (measured - poisson.pmf(k)).abs();
        }
        // Mean-matched scalar summary for the report columns.
        let measured_mean: f64 = pmf.iter().map(|&(k, p)| k as f64 * p).sum();
        TheoryCheck::new(name.into(), rho, measured_mean, l1, tol.pmf_l1)
    }
}

/// A collection of [`TheoryCheck`]s for one instrumented run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TheoryReport {
    /// The individual comparisons, in evaluation order.
    pub checks: Vec<TheoryCheck>,
}

impl TheoryReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        TheoryReport::default()
    }

    /// Appends a check.
    pub fn push(&mut self, check: TheoryCheck) {
        self.checks.push(check);
    }

    /// `true` when every check passed (vacuously true when empty).
    #[must_use]
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// The checks that exceeded tolerance.
    #[must_use]
    pub fn flagged(&self) -> Vec<&TheoryCheck> {
        self.checks.iter().filter(|c| !c.passed).collect()
    }

    /// Merges another report's checks into this one.
    pub fn extend(&mut self, other: TheoryReport) {
        self.checks.extend(other.checks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_within_tolerance_passes() {
        let tol = TheoryTolerance::default();
        let c = TheoryCheck::mean_occupancy("n0", 15.0, 14.2, &tol);
        assert!(c.passed);
        assert!((c.deviation - 0.8 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn mistuned_occupancy_is_flagged() {
        let tol = TheoryTolerance::default();
        // A 2x-wrong mu shows up as a ~2x-wrong mean.
        let c = TheoryCheck::mean_occupancy("n0", 15.0, 7.4, &tol);
        assert!(!c.passed);
    }

    #[test]
    fn erlang_loss_uses_absolute_deviation() {
        let tol = TheoryTolerance::default();
        let predicted = erlang_b(5.0, 4);
        let c = TheoryCheck::erlang_loss("n0 drops", 5.0, 4, predicted + 0.03, &tol);
        assert!(c.passed);
        let c = TheoryCheck::erlang_loss("n0 drops", 5.0, 4, predicted + 0.2, &tol);
        assert!(!c.passed);
    }

    #[test]
    fn exact_poisson_pmf_has_zero_l1() {
        let tol = TheoryTolerance::default();
        let rho = 3.0;
        let poisson = Poisson::new(rho);
        let pmf: Vec<(u64, f64)> = (0..=20).map(|k| (k, poisson.pmf(k))).collect();
        let c = TheoryCheck::poisson_occupancy_pmf("pmf", rho, &pmf, &tol);
        assert!(c.passed);
        assert!(c.deviation < 1e-6);
        assert!((c.measured - rho).abs() < 1e-3);
    }

    #[test]
    fn shifted_pmf_is_flagged() {
        let tol = TheoryTolerance::default();
        let poisson = Poisson::new(8.0);
        let pmf: Vec<(u64, f64)> = (0..=30).map(|k| (k, poisson.pmf(k))).collect();
        let c = TheoryCheck::poisson_occupancy_pmf("pmf", 2.0, &pmf, &tol);
        assert!(!c.passed);
    }

    #[test]
    fn report_aggregates_flags() {
        let tol = TheoryTolerance::default();
        let mut report = TheoryReport::new();
        report.push(TheoryCheck::mean_occupancy("ok", 10.0, 10.1, &tol));
        assert!(report.passed());
        report.push(TheoryCheck::mean_occupancy("bad", 10.0, 20.0, &tol));
        assert!(!report.passed());
        assert_eq!(report.flagged().len(), 1);
        assert_eq!(report.flagged()[0].name, "bad");
    }

    #[test]
    fn report_round_trips_through_json() {
        let tol = TheoryTolerance::default();
        let mut report = TheoryReport::new();
        report.push(TheoryCheck::erlang_loss("loss", 5.0, 4, 0.4, &tol));
        let json = serde_json::to_string(&report).unwrap();
        let back: TheoryReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}

//! The engine self-profiler: coarse batched wall-time attribution to
//! [`Phase`]s.
//!
//! [`PhaseProfiler`] implements the kernel's [`PhaseTimer`] hook. To keep
//! the simulation hot path un-regressed it does **not** read the clock on
//! every phase switch; instead it counts switches per phase and reads
//! `Instant::now()` once per `batch` switches (default
//! [`DEFAULT_PHASE_BATCH`]), distributing the elapsed interval across the
//! pending phases proportionally to their segment counts. That makes each
//! switch a couple of array increments, and — by construction — the phase
//! durations sum exactly to the total profiled wall time, which the CI
//! smoke step asserts.
//!
//! The coarse attribution is the documented trade-off: within one batch,
//! time is split by segment *count*, not true per-segment duration, so a
//! single pathologically slow segment is smeared across its batch. At the
//! default batch of 64 and millions of switches per run, the smear is
//! far below the phase-level signal the profiler exists to surface.
//!
//! Like every probe, the profiler observes and never acts: it consumes no
//! RNG draws and cannot perturb outcomes (verified by byte-identical
//! digest tests with the profiler on vs. off).

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::time::Instant;

use crate::span::{json_escape, PHASE_PID};
use tempriv_sim::profile::{Phase, PhaseTimer, PHASE_COUNT};

/// Default number of phase switches between clock reads.
pub const DEFAULT_PHASE_BATCH: u32 = 64;

/// A batching wall-time profiler over the kernel's [`Phase`] vocabulary.
#[derive(Debug, Clone)]
pub struct PhaseProfiler {
    batch: u32,
    pending: [u32; PHASE_COUNT],
    pending_total: u32,
    current: Phase,
    last_flush: Instant,
    counts: [u64; PHASE_COUNT],
    secs: [f64; PHASE_COUNT],
}

impl Default for PhaseProfiler {
    fn default() -> Self {
        PhaseProfiler::new()
    }
}

impl PhaseProfiler {
    /// A profiler with the default switch batch.
    #[must_use]
    pub fn new() -> Self {
        PhaseProfiler::with_batch(DEFAULT_PHASE_BATCH)
    }

    /// A profiler reading the clock every `batch` switches (1 = every
    /// switch, maximum accuracy, maximum overhead).
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    #[must_use]
    pub fn with_batch(batch: u32) -> Self {
        assert!(batch > 0, "phase batch must be positive");
        PhaseProfiler {
            batch,
            pending: [0; PHASE_COUNT],
            pending_total: 0,
            current: Phase::EngineLoop,
            last_flush: Instant::now(),
            counts: [0; PHASE_COUNT],
            secs: [0.0; PHASE_COUNT],
        }
    }

    fn flush_pending(&mut self) {
        let now = Instant::now();
        if self.pending_total > 0 {
            let elapsed = now.duration_since(self.last_flush).as_secs_f64();
            let total = f64::from(self.pending_total);
            for i in 0..PHASE_COUNT {
                if self.pending[i] > 0 {
                    self.counts[i] += u64::from(self.pending[i]);
                    self.secs[i] += elapsed * f64::from(self.pending[i]) / total;
                    self.pending[i] = 0;
                }
            }
            self.pending_total = 0;
        }
        self.last_flush = now;
    }

    /// Closes the open segment, flushes pending time, and freezes the
    /// attribution into a serializable [`PhaseBreakdown`].
    #[must_use]
    pub fn finish(mut self) -> PhaseBreakdown {
        self.pending[self.current.index()] += 1;
        self.pending_total += 1;
        self.flush_pending();
        PhaseBreakdown {
            batch: self.batch,
            total_secs: self.secs.iter().sum(),
            phases: Phase::ALL
                .iter()
                .map(|p| PhaseStat {
                    phase: p.name().to_string(),
                    count: self.counts[p.index()],
                    secs: self.secs[p.index()],
                })
                .collect(),
        }
    }
}

impl PhaseTimer for PhaseProfiler {
    #[inline]
    fn switch(&mut self, phase: Phase) -> Phase {
        // Hot path: two array increments and a branch. Completed-segment
        // counts are folded in from `pending` at flush time rather than
        // incremented here.
        let prev = self.current;
        self.pending[prev.index()] += 1;
        self.pending_total += 1;
        self.current = phase;
        if self.pending_total >= self.batch {
            self.flush_pending();
        }
        prev
    }
}

/// One phase's share of a [`PhaseBreakdown`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseStat {
    /// Stable phase name (see [`Phase::name`]).
    pub phase: String,
    /// Completed segments attributed to this phase.
    pub count: u64,
    /// Wall seconds attributed to this phase.
    pub secs: f64,
}

/// A frozen per-phase wall-time attribution.
///
/// By construction `phases[..].secs` sums to `total_secs` (every flush
/// distributes the whole inter-flush interval).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// The switch batch the profile ran with.
    pub batch: u32,
    /// Total profiled wall seconds.
    pub total_secs: f64,
    /// Per-phase attribution, in [`Phase::ALL`] order.
    pub phases: Vec<PhaseStat>,
}

impl PhaseBreakdown {
    /// Seconds attributed to the named phase (0 when absent).
    #[must_use]
    pub fn secs_for(&self, phase: &str) -> f64 {
        self.phases
            .iter()
            .find(|p| p.phase == phase)
            .map_or(0.0, |p| p.secs)
    }

    /// Folds `other` into `self` (summing counts, seconds, and totals);
    /// used to aggregate per-scenario profiles into a run-level table.
    pub fn merge(&mut self, other: &PhaseBreakdown) {
        self.total_secs += other.total_secs;
        for stat in &other.phases {
            match self.phases.iter_mut().find(|p| p.phase == stat.phase) {
                Some(mine) => {
                    mine.count += stat.count;
                    mine.secs += stat.secs;
                }
                None => self.phases.push(stat.clone()),
            }
        }
    }

    /// Renders an aligned text table: phase, segment count, seconds, and
    /// share of total, with a closing `total` row.
    #[must_use]
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>12} {:>8}",
            "phase", "segments", "seconds", "share"
        );
        for stat in &self.phases {
            let share = if self.total_secs > 0.0 {
                100.0 * stat.secs / self.total_secs
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<14} {:>12} {:>12.6} {:>7.1}%",
                stat.phase, stat.count, stat.secs, share
            );
        }
        let segments: u64 = self.phases.iter().map(|p| p.count).sum();
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>12.6} {:>7.1}%",
            "total", segments, self.total_secs, 100.0
        );
        out
    }

    /// Renders the breakdown as sequential Chrome `"X"` phase bands on
    /// the engine-phases process ([`PHASE_PID`]), starting at `start_us`
    /// on thread `tid`, plus a thread-name metadata event carrying
    /// `label`. Zero-duration phases are skipped.
    #[must_use]
    pub fn chrome_phase_events(&self, label: &str, start_us: u64, tid: u64) -> Vec<String> {
        let mut parts = vec![
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PHASE_PID},\"tid\":{tid},\
                 \"args\":{{\"name\":\"engine phases\"}}}}"
            ),
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PHASE_PID},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(label)
            ),
        ];
        let mut cursor = start_us as f64;
        for stat in &self.phases {
            let dur = stat.secs * 1e6;
            if dur <= 0.0 {
                continue;
            }
            parts.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                 \"pid\":{PHASE_PID},\"tid\":{tid},\"args\":{{\"segments\":{}}}}}",
                json_escape(&stat.phase),
                cursor,
                dur,
                stat.count
            ));
            cursor += dur;
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::wrap_chrome_events;

    #[test]
    fn phases_sum_to_total_by_construction() {
        let mut prof = PhaseProfiler::with_batch(3);
        for _ in 0..100 {
            let prev = prof.switch(Phase::Create);
            prof.switch(prev);
            prof.switch(Phase::QueuePush);
            prof.switch(Phase::EngineLoop);
        }
        let breakdown = prof.finish();
        let sum: f64 = breakdown.phases.iter().map(|p| p.secs).sum();
        assert!(
            (sum - breakdown.total_secs).abs() <= 1e-9 * breakdown.total_secs.max(1e-12),
            "sum {sum} vs total {}",
            breakdown.total_secs
        );
        assert!(breakdown.total_secs >= 0.0);
        let segments: u64 = breakdown.phases.iter().map(|p| p.count).sum();
        assert_eq!(segments, 401, "400 switches + the closing segment");
    }

    #[test]
    fn switch_returns_the_previous_phase() {
        let mut prof = PhaseProfiler::new();
        assert_eq!(prof.switch(Phase::VictimSelect), Phase::EngineLoop);
        assert_eq!(prof.switch(Phase::Probe), Phase::VictimSelect);
        let _ = prof.finish();
    }

    #[test]
    fn counts_attribute_to_the_phase_that_was_running() {
        let mut prof = PhaseProfiler::with_batch(1000);
        prof.switch(Phase::Create); // closes an EngineLoop segment
        prof.switch(Phase::EngineLoop); // closes a Create segment
        let breakdown = prof.finish();
        let stat = |name: &str| {
            breakdown
                .phases
                .iter()
                .find(|p| p.phase == name)
                .unwrap()
                .count
        };
        assert_eq!(stat("create"), 1);
        assert_eq!(stat("engine_loop"), 2, "initial + closing segment");
    }

    #[test]
    fn breakdown_merge_and_table() {
        let mut a = PhaseProfiler::with_batch(1).finish();
        let b = PhaseProfiler::with_batch(1).finish();
        let before = a.total_secs;
        a.merge(&b);
        assert!((a.total_secs - (before + b.total_secs)).abs() < 1e-12);
        let table = a.table();
        assert!(table.contains("engine_loop"));
        assert!(table.contains("victim_select"));
        assert!(table.lines().last().unwrap().starts_with("total"));
    }

    #[test]
    fn breakdown_round_trips_through_json() {
        let breakdown = PhaseProfiler::new().finish();
        let json = serde_json::to_string(&breakdown).unwrap();
        let back: PhaseBreakdown = serde_json::from_str(&json).unwrap();
        assert_eq!(back, breakdown);
    }

    #[test]
    fn chrome_phase_bands_are_sequential_and_escaped() {
        let breakdown = PhaseBreakdown {
            batch: 64,
            total_secs: 0.003,
            phases: vec![
                PhaseStat {
                    phase: "engine_loop".to_string(),
                    count: 10,
                    secs: 0.001,
                },
                PhaseStat {
                    phase: "arrive".to_string(),
                    count: 5,
                    secs: 0.002,
                },
            ],
        };
        let events = breakdown.chrome_phase_events("point \"0\"", 100, 2);
        let doc = wrap_chrome_events(&events);
        assert!(doc.contains("point \\\"0\\\""));
        assert!(doc.contains("\"ts\":100.000"));
        // Second band starts where the first ends: 100 + 1000us.
        assert!(doc.contains("\"ts\":1100.000"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }
}

//! Wall-clock spans for timing pipeline stages.
//!
//! Spans measure host time (build, simulate, score, …), not simulated
//! time; they are profiling metadata and are deliberately excluded from
//! anything that must be deterministic (cache keys, result digests,
//! byte-identical output checks).

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// A named collection of wall-time measurements.
///
/// # Examples
///
/// ```
/// use tempriv_telemetry::SpanSet;
///
/// let mut spans = SpanSet::new();
/// let answer = spans.time("simulate", || 6 * 7);
/// assert_eq!(answer, 42);
/// assert_eq!(spans.spans().len(), 1);
/// assert_eq!(spans.spans()[0].0, "simulate");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SpanSet {
    spans: Vec<(String, f64)>,
}

impl SpanSet {
    /// An empty span set.
    #[must_use]
    pub fn new() -> Self {
        SpanSet::default()
    }

    /// Runs `f`, recording its wall time under `name`.
    pub fn time<R>(&mut self, name: impl Into<String>, f: impl FnOnce() -> R) -> R {
        let started = Instant::now();
        let out = f();
        self.record(name, started.elapsed().as_secs_f64());
        out
    }

    /// Records an externally measured duration (seconds) under `name`.
    pub fn record(&mut self, name: impl Into<String>, seconds: f64) {
        self.spans.push((name.into(), seconds));
    }

    /// The recorded `(name, seconds)` pairs, in recording order.
    #[must_use]
    pub fn spans(&self) -> &[(String, f64)] {
        &self.spans
    }

    /// Total seconds across all spans.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.spans.iter().map(|(_, s)| s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_in_order() {
        let mut spans = SpanSet::new();
        spans.record("build", 0.5);
        spans.record("simulate", 1.5);
        assert_eq!(spans.spans().len(), 2);
        assert_eq!(spans.spans()[1].0, "simulate");
        assert!((spans.total_seconds() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_returns_the_closure_result() {
        let mut spans = SpanSet::new();
        let got = spans.time("work", || "done");
        assert_eq!(got, "done");
        assert!(spans.spans()[0].1 >= 0.0);
    }

    #[test]
    fn span_set_round_trips_through_json() {
        let mut spans = SpanSet::new();
        spans.record("a", 0.25);
        let json = serde_json::to_string(&spans).unwrap();
        let back: SpanSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spans);
    }
}

//! Wall-clock spans for timing pipeline stages, and the cross-layer
//! span tracer.
//!
//! Spans measure host time (build, simulate, score, …), not simulated
//! time; they are profiling metadata and are deliberately excluded from
//! anything that must be deterministic (cache keys, result digests,
//! byte-identical output checks).
//!
//! The cross-layer tracer adds three pieces on top of the simple
//! [`SpanSet`]:
//!
//! * [`TraceCtx`] — a `(trace id, span id)` pair derived with
//!   `splitmix64` chains, so ids are deterministic functions of the
//!   request/job identity and runs remain reproducible;
//! * [`SpanRecord`] — one named wall-time interval stamped with its
//!   trace lineage and originating layer (`serve`, `queue`, `job`,
//!   `scenario`);
//! * [`SpanRing`] — a bounded overwrite-oldest buffer of records, the
//!   same semantics as the flight recorder's ring.
//!
//! [`chrome_span_events`] renders records as Chrome `trace_event`
//! objects so they merge with flight-recorder and phase-profile events
//! onto one Perfetto timeline (see [`wrap_chrome_events`]).

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Instant;
use tempriv_sim::rng::splitmix64;

/// A named collection of wall-time measurements.
///
/// # Examples
///
/// ```
/// use tempriv_telemetry::SpanSet;
///
/// let mut spans = SpanSet::new();
/// let answer = spans.time("simulate", || 6 * 7);
/// assert_eq!(answer, 42);
/// assert_eq!(spans.spans().len(), 1);
/// assert_eq!(spans.spans()[0].0, "simulate");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SpanSet {
    spans: Vec<(String, f64)>,
}

impl SpanSet {
    /// An empty span set.
    #[must_use]
    pub fn new() -> Self {
        SpanSet::default()
    }

    /// Runs `f`, recording its wall time under `name`.
    pub fn time<R>(&mut self, name: impl Into<String>, f: impl FnOnce() -> R) -> R {
        let started = Instant::now();
        let out = f();
        self.record(name, started.elapsed().as_secs_f64());
        out
    }

    /// Records an externally measured duration (seconds) under `name`.
    pub fn record(&mut self, name: impl Into<String>, seconds: f64) {
        self.spans.push((name.into(), seconds));
    }

    /// The recorded `(name, seconds)` pairs, in recording order.
    #[must_use]
    pub fn spans(&self) -> &[(String, f64)] {
        &self.spans
    }

    /// Total seconds across all spans.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.spans.iter().map(|(_, s)| s).sum()
    }
}

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A trace identity: which end-to-end trace a span belongs to and the
/// span's own id (used as the parent id when deriving children).
///
/// Ids are `splitmix64` chains over the originating request/job
/// identity, so the same submission always produces the same ids —
/// tracing never introduces nondeterminism into ids, only wall-clock
/// timestamps are nondeterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCtx {
    /// The end-to-end trace id, shared by every span in the trace.
    pub trace_id: u64,
    /// This context's own span id (children record it as `parent_id`).
    pub span_id: u64,
}

impl TraceCtx {
    /// Derives a root context from a seed and a textual tag (e.g. a
    /// serve job key or an experiment name).
    #[must_use]
    pub fn root(seed: u64, tag: &str) -> TraceCtx {
        let mut h = splitmix64(seed ^ 0x7465_6d70_7269_7673);
        for b in tag.bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        TraceCtx {
            trace_id: splitmix64(h),
            span_id: splitmix64(h ^ 0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Derives the `index`-th child context: same trace, new span id.
    #[must_use]
    pub fn child(&self, index: u64) -> TraceCtx {
        TraceCtx {
            trace_id: self.trace_id,
            span_id: splitmix64(self.span_id ^ splitmix64(index.wrapping_add(1))),
        }
    }
}

/// One named wall-time interval with its trace lineage.
///
/// Times are microseconds relative to an epoch chosen by the producer
/// (the telemetry sink's construction instant for job spans, the server
/// start for serve spans); exporters re-base when merging timelines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// The end-to-end trace id.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// The parent span's id (0 = root).
    pub parent_id: u64,
    /// Human-readable span name (escaped on export).
    pub name: String,
    /// Originating layer: `serve`, `queue`, `job`, or `scenario`.
    pub layer: String,
    /// Start, microseconds since the producer's epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// A bounded overwrite-oldest buffer of [`SpanRecord`]s.
///
/// Mirrors the flight recorder's ring semantics: pushing into a full
/// ring evicts the oldest record and advances the eviction counter, so
/// long runs keep the most recent spans in fixed memory.
#[derive(Debug, Clone, Default)]
pub struct SpanRing {
    spans: VecDeque<SpanRecord>,
    capacity: usize,
    evicted: u64,
}

impl SpanRing {
    /// A ring retaining at most `capacity` spans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "span ring capacity must be positive");
        SpanRing {
            spans: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            evicted: 0,
        }
    }

    /// Appends a span, evicting the oldest if at capacity.
    pub fn push(&mut self, span: SpanRecord) {
        if self.spans.len() == self.capacity {
            self.spans.pop_front();
            self.evicted += 1;
        }
        self.spans.push_back(span);
    }

    /// Retained spans, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter()
    }

    /// Number of retained spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans evicted because the ring was full.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Drains the ring into a `Vec`, oldest first.
    #[must_use]
    pub fn into_vec(self) -> Vec<SpanRecord> {
        self.spans.into_iter().collect()
    }
}

/// Chrome `pid` under which cross-layer wall-clock spans are exported.
pub const SPAN_PID: u64 = 1000;

/// Chrome `pid` under which engine phase bands are exported.
pub const PHASE_PID: u64 = 1001;

/// Stable thread id for a span layer within [`SPAN_PID`].
#[must_use]
pub fn layer_tid(layer: &str) -> u64 {
    match layer {
        "serve" => 0,
        "queue" => 1,
        "job" => 2,
        "scenario" => 3,
        _ => 4,
    }
}

/// Renders spans as Chrome `trace_event` objects (metadata naming the
/// process and each layer's thread, then one `"X"` complete event per
/// span). `offset_us` shifts every timestamp, letting callers re-base a
/// producer-relative timeline onto a shared one; spans that would start
/// before zero are clamped.
#[must_use]
pub fn chrome_span_events(spans: &[SpanRecord], offset_us: i64) -> Vec<String> {
    let mut parts = Vec::new();
    if spans.is_empty() {
        return parts;
    }
    parts.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{SPAN_PID},\"tid\":0,\
         \"args\":{{\"name\":\"wall-clock spans\"}}}}"
    ));
    let layers: BTreeSet<&str> = spans.iter().map(|s| s.layer.as_str()).collect();
    for layer in layers {
        parts.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{SPAN_PID},\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            layer_tid(layer),
            json_escape(layer)
        ));
    }
    for span in spans {
        let ts = (span.start_us as i64 + offset_us).max(0);
        parts.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{},\
             \"pid\":{SPAN_PID},\"tid\":{},\"args\":{{\"trace_id\":\"{:#018x}\",\
             \"span_id\":\"{:#018x}\",\"parent_id\":\"{:#018x}\"}}}}",
            json_escape(&span.name),
            span.dur_us,
            layer_tid(&span.layer),
            span.trace_id,
            span.span_id,
            span.parent_id
        ));
    }
    parts
}

/// Wraps pre-rendered Chrome events into the `{"traceEvents": [...]}`
/// object form Perfetto loads — the merge point for span events, phase
/// bands, and flight-recorder events.
#[must_use]
pub fn wrap_chrome_events(events: &[String]) -> String {
    format!("{{\"traceEvents\":[{}]}}\n", events.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_in_order() {
        let mut spans = SpanSet::new();
        spans.record("build", 0.5);
        spans.record("simulate", 1.5);
        assert_eq!(spans.spans().len(), 2);
        assert_eq!(spans.spans()[1].0, "simulate");
        assert!((spans.total_seconds() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_returns_the_closure_result() {
        let mut spans = SpanSet::new();
        let got = spans.time("work", || "done");
        assert_eq!(got, "done");
        assert!(spans.spans()[0].1 >= 0.0);
    }

    #[test]
    fn span_set_round_trips_through_json() {
        let mut spans = SpanSet::new();
        spans.record("a", 0.25);
        let json = serde_json::to_string(&spans).unwrap();
        let back: SpanSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spans);
    }

    #[test]
    fn json_escape_handles_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn trace_ctx_is_deterministic_and_tag_sensitive() {
        let a = TraceCtx::root(7, "job-key");
        let b = TraceCtx::root(7, "job-key");
        assert_eq!(a, b);
        let c = TraceCtx::root(7, "other-key");
        assert_ne!(a.trace_id, c.trace_id);
        let child0 = a.child(0);
        let child1 = a.child(1);
        assert_eq!(child0.trace_id, a.trace_id, "children share the trace");
        assert_ne!(child0.span_id, child1.span_id);
        assert_ne!(child0.span_id, a.span_id);
    }

    fn rec(i: u64) -> SpanRecord {
        SpanRecord {
            trace_id: 1,
            span_id: 10 + i,
            parent_id: 1,
            name: format!("span {i}"),
            layer: "job".to_string(),
            start_us: i * 100,
            dur_us: 50,
        }
    }

    #[test]
    fn span_ring_overwrites_oldest_and_counts_evictions() {
        let mut ring = SpanRing::with_capacity(2);
        for i in 0..5 {
            ring.push(rec(i));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.evicted(), 3);
        let kept: Vec<u64> = ring.iter().map(|s| s.span_id).collect();
        assert_eq!(kept, vec![13, 14], "newest spans survive");
        let drained = ring.into_vec();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].span_id, 13);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_span_ring_panics() {
        let _ = SpanRing::with_capacity(0);
    }

    #[test]
    fn chrome_span_events_escape_names_and_carry_trace_ids() {
        let mut span = rec(0);
        span.name = "evil \"name\"\nwith\\controls".to_string();
        let events = chrome_span_events(&[span], 0);
        let doc = wrap_chrome_events(&events);
        assert!(doc.contains("evil \\\"name\\\"\\nwith\\\\controls"));
        assert!(doc.contains("\"trace_id\":\"0x0000000000000001\""));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn chrome_span_events_rebase_and_clamp() {
        let span = rec(1); // starts at 100us
        let shifted = chrome_span_events(std::slice::from_ref(&span), 500);
        assert!(shifted.iter().any(|e| e.contains("\"ts\":600")));
        let clamped = chrome_span_events(&[span], -500);
        assert!(clamped.iter().any(|e| e.contains("\"ts\":0")));
    }

    #[test]
    fn empty_span_list_produces_no_metadata() {
        assert!(chrome_span_events(&[], 0).is_empty());
    }
}

//! # tempriv-infotheory — the information-theoretic formulation
//!
//! Implements §3 of *Temporal Privacy in Wireless Sensor Networks*
//! (ICDCS 2007). Temporal privacy is the (lack of) mutual information
//! between packet creation times `X` and observed arrival times
//! `Z = X + Y`, where `Y` is the artificial buffering delay:
//!
//! * [`distributions`] — creation/delay laws with closed-form differential
//!   entropies (exponential is max-entropy among non-negative laws at a
//!   fixed mean, the paper's argument for exponential delays),
//! * [`mutual_information`] — numeric `I(X; Z) = h(X + Y) − h(Y)` (eq. 1)
//!   and the entropy-power-inequality lower bound (eq. 2),
//! * [`bounds`] — the bits-through-queues stream bounds (eq. 4) with the
//!   μ/λ tuning rule,
//! * [`estimators`] — histogram entropy/MI estimators for simulator output
//!   and the MSE↔mutual-information bridge behind the paper's privacy
//!   metric,
//! * [`streaming`] — online (O(1)-per-sample) mean/variance, MI, and
//!   adversary-MSE estimators for the live privacy observatory,
//! * [`grid`] — grid densities and convolution,
//! * [`special`] — log-gamma and digamma.
//!
//! # Examples
//!
//! The designer's trade-off in one picture: longer mean delays leak less,
//! and the leakage obeys the bits-through-queues bound.
//!
//! ```
//! use tempriv_infotheory::bounds::btq_packet_bound_nats;
//! use tempriv_infotheory::distributions::{ErlangDist, Exponential};
//! use tempriv_infotheory::mutual_information::mi_additive_nats;
//!
//! let lambda = 0.5;           // packet creations per time unit
//! let mu = 1.0 / 30.0;        // delay rate: mean delay 30 units
//! let x1 = ErlangDist::new(1, lambda); // first packet's creation law
//! let y = Exponential::new(mu);
//! let leak = mi_additive_nats(&x1, &y, 4_000);
//! assert!(leak <= btq_packet_bound_nats(1, mu, lambda) + 5e-3);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bounds;
pub mod distributions;
pub mod estimators;
pub mod grid;
pub mod mutual_information;
pub mod special;
pub mod streaming;

pub use bounds::{btq_packet_bound_nats, btq_stream_bound_nats, mu_for_packet_bound};
pub use distributions::{ContinuousDist, Degenerate, ErlangDist, Exponential, Gaussian, Uniform};
pub use estimators::{
    entropy_from_samples_nats, mi_from_samples_nats, mi_lower_bound_from_mse_nats,
    mse_lower_bound_from_mi, EstimateError,
};
pub use grid::{kl_divergence_nats, GridDensity};
pub use mutual_information::{epi_lower_bound_nats, gaussian_channel_mi_nats, mi_additive_nats};
pub use streaming::{StreamingMi, StreamingMse, Welford, DEFAULT_STREAMING_BINS};

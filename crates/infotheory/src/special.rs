//! Special functions: log-gamma and digamma.

/// Natural log of the gamma function (Lanczos, g = 7, n = 9).
///
/// # Panics
///
/// Panics if `x <= 0`.
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision, clippy::inconsistent_digit_grouping)]
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + G + 0.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Digamma function ψ(x) = d/dx ln Γ(x), for positive arguments.
///
/// Uses the upward recurrence `ψ(x) = ψ(x+1) − 1/x` to push the argument
/// above 14, then the standard asymptotic series; accurate to ~1e-12.
///
/// # Panics
///
/// Panics if `x <= 0`.
#[must_use]
pub fn digamma(x: f64) -> f64 {
    assert!(x > 0.0, "digamma requires a positive argument, got {x}");
    let mut x = x;
    let mut acc = 0.0;
    while x < 14.0 {
        acc -= 1.0 / x;
        x += 1.0;
    }
    // Asymptotic expansion: ln x − 1/(2x) − Σ B_{2n}/(2n x^{2n}).
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    acc + x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))))
}

#[cfg(test)]
mod tests {
    use super::*;

    const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

    #[test]
    fn digamma_at_one_is_minus_euler() {
        assert!((digamma(1.0) + EULER_GAMMA).abs() < 1e-12);
    }

    #[test]
    fn digamma_recurrence_holds() {
        for &x in &[0.3, 1.7, 4.2, 11.0] {
            assert!(
                (digamma(x + 1.0) - digamma(x) - 1.0 / x).abs() < 1e-11,
                "x = {x}"
            );
        }
    }

    #[test]
    fn digamma_integer_values() {
        // psi(n) = -gamma + sum_{k=1}^{n-1} 1/k.
        for n in 2..10u32 {
            let expected: f64 = -EULER_GAMMA + (1..n).map(|k| 1.0 / k as f64).sum::<f64>();
            assert!((digamma(n as f64) - expected).abs() < 1e-11, "n = {n}");
        }
    }

    #[test]
    fn ln_gamma_factorials() {
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(1.0)).abs() < 1e-12);
    }

    #[test]
    fn digamma_is_derivative_of_ln_gamma() {
        for &x in &[0.8, 2.5, 7.0] {
            let h = 1e-6;
            let numeric = (ln_gamma(x + h) - ln_gamma(x - h)) / (2.0 * h);
            assert!((digamma(x) - numeric).abs() < 1e-6, "x = {x}");
        }
    }
}

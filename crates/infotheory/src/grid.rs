//! Uniform-grid densities and convolution.
//!
//! The mutual-information machinery needs `h(X + Y)` for arbitrary
//! creation/delay laws. We discretize densities on a uniform grid, convolve
//! them (the density of a sum of independent variables), and integrate
//! `−f ln f` by the trapezoid rule.

use crate::distributions::ContinuousDist;

/// A probability density sampled on a uniform grid starting at `origin`
/// with spacing `step`.
#[derive(Debug, Clone, PartialEq)]
pub struct GridDensity {
    origin: f64,
    step: f64,
    values: Vec<f64>,
}

impl GridDensity {
    /// Samples `dist` on `[0, hi]` with `n` points and renormalizes so the
    /// grid integrates to exactly 1 (absorbing truncation error).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `hi <= 0`, or the sampled mass is zero.
    #[must_use]
    pub fn from_dist<D: ContinuousDist + ?Sized>(dist: &D, hi: f64, n: usize) -> Self {
        assert!(n >= 2, "grid needs at least two points");
        assert!(
            hi.is_finite() && hi > 0.0,
            "grid end must be positive, got {hi}"
        );
        let step = hi / (n - 1) as f64;
        let values: Vec<f64> = (0..n).map(|i| dist.pdf(i as f64 * step)).collect();
        let mut g = GridDensity {
            origin: 0.0,
            step,
            values,
        };
        g.normalize();
        g
    }

    /// Builds a density from raw samples on a grid (values need not be
    /// normalized; they will be).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two values, a non-positive step, negative
    /// values, or zero total mass.
    #[must_use]
    pub fn from_values(origin: f64, step: f64, values: Vec<f64>) -> Self {
        assert!(values.len() >= 2, "grid needs at least two points");
        assert!(step.is_finite() && step > 0.0, "grid step must be positive");
        assert!(
            values.iter().all(|&v| v.is_finite() && v >= 0.0),
            "density values must be finite and non-negative"
        );
        let mut g = GridDensity {
            origin,
            step,
            values,
        };
        g.normalize();
        g
    }

    fn normalize(&mut self) {
        let mass = self.integral();
        assert!(mass > 0.0, "density has zero mass on the grid");
        for v in &mut self.values {
            *v /= mass;
        }
    }

    /// Trapezoid-rule integral of the stored values.
    #[must_use]
    pub fn integral(&self) -> f64 {
        let n = self.values.len();
        let interior: f64 = self.values[1..n - 1].iter().sum();
        (0.5 * (self.values[0] + self.values[n - 1]) + interior) * self.step
    }

    /// Grid origin.
    #[must_use]
    pub const fn origin(&self) -> f64 {
        self.origin
    }

    /// Grid spacing.
    #[must_use]
    pub const fn step(&self) -> f64 {
        self.step
    }

    /// Number of grid points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the grid holds no points (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Density values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mean of the gridded density.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.values.len();
        let weighted = |i: usize| (self.origin + i as f64 * self.step) * self.values[i];
        let interior: f64 = (1..n - 1).map(weighted).sum();
        (0.5 * (weighted(0) + weighted(n - 1)) + interior) * self.step
    }

    /// Differential entropy `−∫ f ln f` in nats by the trapezoid rule
    /// (zero-density points contribute nothing, as in the limit).
    #[must_use]
    pub fn entropy_nats(&self) -> f64 {
        let term = |v: f64| if v > 0.0 { -v * v.ln() } else { 0.0 };
        let n = self.values.len();
        let interior: f64 = self.values[1..n - 1].iter().map(|&v| term(v)).sum();
        (0.5 * (term(self.values[0]) + term(self.values[n - 1])) + interior) * self.step
    }

    /// Density of the sum of two independent gridded variables.
    ///
    /// Both inputs must share one grid spacing; the output grid spans the
    /// sum of the supports. Complexity O(n·m); the grids used by the bound
    /// validations are a few thousand points, so this stays well under a
    /// millisecond-scale budget.
    ///
    /// # Panics
    ///
    /// Panics if the grid spacings differ by more than 1 part in 10⁹.
    #[must_use]
    pub fn convolve(&self, other: &GridDensity) -> GridDensity {
        let rel = (self.step - other.step).abs() / self.step.max(other.step);
        assert!(
            rel < 1e-9,
            "convolution requires a common grid step ({} vs {})",
            self.step,
            other.step
        );
        let n = self.values.len();
        let m = other.values.len();
        let mut out = vec![0.0f64; n + m - 1];
        for (i, &a) in self.values.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (j, &b) in other.values.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        for v in &mut out {
            *v *= self.step;
        }
        GridDensity::from_values(self.origin + other.origin, self.step, out)
    }
}

/// Kullback–Leibler divergence `D(f ‖ g)` (nats) between two densities
/// sampled on the *same* grid — the auxiliary quantity in the paper's
/// §3.2 derivation (`I = ln(1 + jμ/λ) − D(f_{X+Y} ‖ f_{X̄+Y})`).
///
/// Points where `f > 0` but `g = 0` contribute `+∞`.
///
/// # Panics
///
/// Panics if the grids differ in origin, step, or length.
#[must_use]
pub fn kl_divergence_nats(f: &GridDensity, g: &GridDensity) -> f64 {
    assert_eq!(f.len(), g.len(), "KL divergence needs a common grid");
    assert!(
        (f.origin() - g.origin()).abs() < 1e-12 && (f.step() - g.step()).abs() < 1e-12,
        "KL divergence needs a common grid"
    );
    let term = |(&fv, &gv): (&f64, &f64)| -> f64 {
        if fv == 0.0 {
            0.0
        } else if gv == 0.0 {
            f64::INFINITY
        } else {
            fv * (fv / gv).ln()
        }
    };
    let n = f.len();
    let pairs: Vec<f64> = f.values().iter().zip(g.values()).map(term).collect();
    let interior: f64 = pairs[1..n - 1].iter().sum();
    (0.5 * (pairs[0] + pairs[n - 1]) + interior) * f.step()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{ContinuousDist, Exponential, Gaussian, Uniform};

    #[test]
    fn gridded_exponential_matches_moments() {
        let d = Exponential::with_mean(5.0);
        let g = GridDensity::from_dist(&d, 120.0, 8_000);
        assert!((g.integral() - 1.0).abs() < 1e-12);
        assert!((g.mean() - 5.0).abs() < 0.01, "mean {}", g.mean());
        assert!(
            (g.entropy_nats() - d.entropy_nats()).abs() < 1e-3,
            "entropy {} vs {}",
            g.entropy_nats(),
            d.entropy_nats()
        );
    }

    #[test]
    fn convolution_of_uniforms_is_triangle() {
        let u = Uniform::new(0.0, 1.0);
        let g = GridDensity::from_dist(&u, 1.0, 2_001);
        let tri = g.convolve(&g);
        assert!((tri.integral() - 1.0).abs() < 1e-9);
        // Peak of the triangle density at x = 1 is 1.
        let peak_idx = (1.0 / tri.step()).round() as usize;
        assert!((tri.values()[peak_idx] - 1.0).abs() < 1e-2);
        assert!((tri.mean() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn convolution_of_exponentials_is_erlang2() {
        let e = Exponential::new(0.5);
        let g = GridDensity::from_dist(&e, 60.0, 6_001);
        let sum = g.convolve(&g);
        // Erlang(2, 0.5): mean 4, pdf(x) = 0.25 x e^{-x/2}.
        assert!((sum.mean() - 4.0).abs() < 0.02, "mean {}", sum.mean());
        let x = 3.0;
        let idx = (x / sum.step()).round() as usize;
        let expected = 0.25 * x * (-x / 2.0f64).exp();
        assert!(
            (sum.values()[idx] - expected).abs() < 1e-3,
            "pdf {} vs {expected}",
            sum.values()[idx]
        );
    }

    #[test]
    fn convolution_of_gaussians_adds_variances() {
        let a = Gaussian::new(10.0, 1.0);
        // Grid over [0, 20] captures ±10 sd.
        let g = GridDensity::from_dist(&a, 20.0, 4_001);
        let sum = g.convolve(&g);
        assert!((sum.mean() - 20.0).abs() < 1e-3);
        // Entropy of N(20, 2): 0.5 ln(2*pi*e*2).
        let expected = 0.5 * (2.0 * std::f64::consts::PI * std::f64::consts::E * 2.0).ln();
        assert!(
            (sum.entropy_nats() - expected).abs() < 1e-3,
            "entropy {} vs {expected}",
            sum.entropy_nats()
        );
    }

    #[test]
    fn from_values_normalizes() {
        let g = GridDensity::from_values(0.0, 0.5, vec![2.0, 2.0, 2.0]);
        assert!((g.integral() - 1.0).abs() < 1e-12);
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        assert_eq!(g.origin(), 0.0);
    }

    #[test]
    #[should_panic(expected = "common grid step")]
    fn mismatched_steps_rejected() {
        let a = GridDensity::from_values(0.0, 0.5, vec![1.0, 1.0]);
        let b = GridDensity::from_values(0.0, 0.25, vec![1.0, 1.0]);
        let _ = a.convolve(&b);
    }

    #[test]
    fn kl_divergence_zero_on_identical() {
        let d = Exponential::with_mean(5.0);
        let g = GridDensity::from_dist(&d, 100.0, 4_000);
        assert!(kl_divergence_nats(&g, &g).abs() < 1e-12);
    }

    #[test]
    fn kl_divergence_exponentials_closed_form() {
        // D(Exp(a) || Exp(b)) = ln(a/b) + b/a - 1 (rates a, b).
        let (a, b) = (1.0f64, 0.5f64);
        let fa = GridDensity::from_dist(&Exponential::new(a), 60.0, 12_000);
        let fb = GridDensity::from_dist(&Exponential::new(b), 60.0, 12_000);
        let expected = (a / b).ln() + b / a - 1.0;
        let measured = kl_divergence_nats(&fa, &fb);
        assert!(
            (measured - expected).abs() < 5e-3,
            "measured {measured} vs {expected}"
        );
        // Asymmetry: D(f||g) != D(g||f).
        let reverse = kl_divergence_nats(&fb, &fa);
        assert!((reverse - ((b / a).ln() + a / b - 1.0)).abs() < 5e-2);
        assert!((measured - reverse).abs() > 1e-3);
    }

    #[test]
    fn kl_divergence_nonnegative() {
        let fa = GridDensity::from_dist(&Uniform::new(0.0, 2.0), 4.0, 2_000);
        let fb = GridDensity::from_dist(&Exponential::new(1.0), 4.0, 2_000);
        assert!(kl_divergence_nats(&fa, &fb) >= 0.0);
    }

    #[test]
    #[should_panic(expected = "zero mass")]
    fn zero_mass_rejected() {
        let _ = GridDensity::from_values(0.0, 1.0, vec![0.0, 0.0]);
    }
}

//! Continuous distributions used in the temporal-privacy formulation.
//!
//! The paper's §3 reasons about the creation-time law `f_X` (Erlang stages
//! of a Poisson source), the delay law `f_Y` (exponential, the max-entropy
//! choice), and the observation `Z = X + Y`. This module provides those
//! densities with exact moments and closed-form differential entropies.

use serde::{Deserialize, Serialize};

use crate::special::{digamma, ln_gamma};

/// A continuous distribution on (a subset of) the real line.
///
/// Implementors expose the density, distribution function, moments, and
/// — when it exists in closed form — the differential entropy in nats.
pub trait ContinuousDist {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;
    /// Cumulative distribution at `x`.
    fn cdf(&self, x: f64) -> f64;
    /// Mean of the distribution.
    fn mean(&self) -> f64;
    /// Variance of the distribution.
    fn variance(&self) -> f64;
    /// Differential entropy in nats (`−∞` for degenerate laws).
    fn entropy_nats(&self) -> f64;
    /// Sampling support upper bound covering at least `1 − eps` of mass,
    /// used to size numeric integration grids.
    fn support_hint(&self, eps: f64) -> f64;
}

/// Exponential distribution with the given mean (`rate = 1/mean`).
///
/// The paper's delay law of choice: among all non-negative distributions
/// with a fixed mean, the exponential maximizes differential entropy, so it
/// hides the most timing information per unit of added latency.
///
/// # Examples
///
/// ```
/// use tempriv_infotheory::distributions::{ContinuousDist, Exponential};
///
/// let d = Exponential::with_mean(30.0);
/// assert_eq!(d.mean(), 30.0);
/// assert!((d.entropy_nats() - (1.0 + 30.0f64.ln())).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential with rate `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is non-positive or not finite.
    #[must_use]
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exponential rate must be positive, got {rate}"
        );
        Exponential { rate }
    }

    /// Creates an exponential with mean `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is non-positive or not finite.
    #[must_use]
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive, got {mean}"
        );
        Exponential { rate: 1.0 / mean }
    }

    /// The rate parameter.
    #[must_use]
    pub const fn rate(&self) -> f64 {
        self.rate
    }
}

impl ContinuousDist for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    fn entropy_nats(&self) -> f64 {
        1.0 - self.rate.ln()
    }

    fn support_hint(&self, eps: f64) -> f64 {
        -(eps.ln()) / self.rate
    }
}

/// Uniform distribution on `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or the bounds are not finite.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid uniform bounds [{lo}, {hi}]"
        );
        Uniform { lo, hi }
    }

    /// A zero-mean-preserving uniform with the given mean: `[0, 2·mean]`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is non-positive or not finite.
    #[must_use]
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "uniform mean must be positive, got {mean}"
        );
        Uniform::new(0.0, 2.0 * mean)
    }

    /// Lower bound.
    #[must_use]
    pub const fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    #[must_use]
    pub const fn hi(&self) -> f64 {
        self.hi
    }
}

impl ContinuousDist for Uniform {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            0.0
        } else {
            1.0 / (self.hi - self.lo)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    fn variance(&self) -> f64 {
        let w = self.hi - self.lo;
        w * w / 12.0
    }

    fn entropy_nats(&self) -> f64 {
        (self.hi - self.lo).ln()
    }

    fn support_hint(&self, _eps: f64) -> f64 {
        self.hi
    }
}

/// Gaussian distribution with the given mean and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gaussian {
    mean: f64,
    sd: f64,
}

impl Gaussian {
    /// Creates a Gaussian with mean `mean` and standard deviation `sd`.
    ///
    /// # Panics
    ///
    /// Panics if `sd` is non-positive or either parameter is not finite.
    #[must_use]
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(mean.is_finite(), "Gaussian mean must be finite, got {mean}");
        assert!(
            sd.is_finite() && sd > 0.0,
            "Gaussian standard deviation must be positive, got {sd}"
        );
        Gaussian { mean, sd }
    }

    /// Standard deviation.
    #[must_use]
    pub const fn sd(&self) -> f64 {
        self.sd
    }
}

impl ContinuousDist for Gaussian {
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.sd;
        (-0.5 * z * z).exp() / (self.sd * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.sd * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.sd * self.sd
    }

    fn entropy_nats(&self) -> f64 {
        0.5 * (2.0 * std::f64::consts::PI * std::f64::consts::E * self.sd * self.sd).ln()
    }

    fn support_hint(&self, _eps: f64) -> f64 {
        self.mean + 8.0 * self.sd
    }
}

/// Erlang(k, rate) — the creation-time law of the j-th packet of a Poisson
/// source (paper §3.2: `X_j` is j-stage Erlangian with mean `j/λ`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErlangDist {
    k: u32,
    rate: f64,
}

impl ErlangDist {
    /// Creates an Erlang with integer shape `k` and rate `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `rate` is non-positive or not finite.
    #[must_use]
    pub fn new(k: u32, rate: f64) -> Self {
        assert!(k > 0, "Erlang shape must be positive");
        assert!(
            rate.is_finite() && rate > 0.0,
            "Erlang rate must be positive, got {rate}"
        );
        ErlangDist { k, rate }
    }

    /// The shape parameter.
    #[must_use]
    pub const fn shape(&self) -> u32 {
        self.k
    }

    /// The rate parameter.
    #[must_use]
    pub const fn rate(&self) -> f64 {
        self.rate
    }
}

impl ContinuousDist for ErlangDist {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            return if self.k == 1 { self.rate } else { 0.0 };
        }
        let k = self.k as f64;
        (k * self.rate.ln() + (k - 1.0) * x.ln() - self.rate * x - ln_gamma(k)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let rx = self.rate * x;
        let mut term = 1.0f64;
        let mut sum = term;
        for i in 1..self.k {
            term *= rx / i as f64;
            sum += term;
        }
        (1.0 - (-rx).exp() * sum).clamp(0.0, 1.0)
    }

    fn mean(&self) -> f64 {
        self.k as f64 / self.rate
    }

    fn variance(&self) -> f64 {
        self.k as f64 / (self.rate * self.rate)
    }

    fn entropy_nats(&self) -> f64 {
        // Gamma(shape k, rate λ): h = k − ln λ + ln Γ(k) + (1 − k)ψ(k).
        let k = self.k as f64;
        k - self.rate.ln() + ln_gamma(k) + (1.0 - k) * digamma(k)
    }

    fn support_hint(&self, eps: f64) -> f64 {
        // Mean plus a generous multiple of the standard deviation.
        let z = (-(eps.ln())).max(1.0);
        self.mean() + (2.0 * z) * self.variance().sqrt() + self.mean()
    }
}

/// A degenerate (constant) "distribution" — the delay law of a fixed
/// buffering delay. Its differential entropy is −∞, which is exactly why
/// the paper rejects deterministic delays: they add latency but hide
/// nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Degenerate {
    value: f64,
}

impl Degenerate {
    /// Creates a point mass at `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    #[must_use]
    pub fn new(value: f64) -> Self {
        assert!(value.is_finite(), "point mass must be finite, got {value}");
        Degenerate { value }
    }

    /// The constant value.
    #[must_use]
    pub const fn value(&self) -> f64 {
        self.value
    }
}

impl ContinuousDist for Degenerate {
    fn pdf(&self, x: f64) -> f64 {
        if x == self.value {
            f64::INFINITY
        } else {
            0.0
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.value {
            0.0
        } else {
            1.0
        }
    }

    fn mean(&self) -> f64 {
        self.value
    }

    fn variance(&self) -> f64 {
        0.0
    }

    fn entropy_nats(&self) -> f64 {
        f64::NEG_INFINITY
    }

    fn support_hint(&self, _eps: f64) -> f64 {
        self.value
    }
}

/// Error function via the Abramowitz–Stegun 7.1.26 rational approximation
/// (|error| < 1.5e-7, ample for CDF checks and tests).
#[must_use]
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn integrate<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64, n: usize) -> f64 {
        let h = (hi - lo) / n as f64;
        let mut s = 0.5 * (f(lo) + f(hi));
        for i in 1..n {
            s += f(lo + i as f64 * h);
        }
        s * h
    }

    #[test]
    fn exponential_density_and_moments() {
        let d = Exponential::with_mean(30.0);
        assert!((d.rate() - 1.0 / 30.0).abs() < 1e-15);
        assert_eq!(d.mean(), 30.0);
        assert_eq!(d.variance(), 900.0);
        assert!((integrate(|x| d.pdf(x), 0.0, 600.0, 50_000) - 1.0).abs() < 1e-6);
        assert_eq!(d.pdf(-1.0), 0.0);
        assert!((d.cdf(30.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn exponential_entropy_closed_form() {
        // h(Exp with mean m) = 1 + ln m.
        let d = Exponential::with_mean(30.0);
        assert!((d.entropy_nats() - (1.0 + 30.0f64.ln())).abs() < 1e-12);
        // Cross-check numerically: -∫ f ln f.
        let num = integrate(
            |x| {
                let p = d.pdf(x);
                if p > 0.0 {
                    -p * p.ln()
                } else {
                    0.0
                }
            },
            0.0,
            1200.0,
            200_000,
        );
        assert!((num - d.entropy_nats()).abs() < 1e-4, "numeric {num}");
    }

    #[test]
    fn exponential_is_max_entropy_at_fixed_mean() {
        // The paper's §3.2 motivation: at mean 30, the exponential beats
        // the uniform [0, 60] and (infinitely) the constant 30.
        let exp = Exponential::with_mean(30.0);
        let uni = Uniform::with_mean(30.0);
        let con = Degenerate::new(30.0);
        assert!(exp.entropy_nats() > uni.entropy_nats());
        assert!(uni.entropy_nats() > con.entropy_nats());
        assert_eq!(con.entropy_nats(), f64::NEG_INFINITY);
    }

    #[test]
    fn uniform_basics() {
        let d = Uniform::new(2.0, 6.0);
        assert_eq!(d.mean(), 4.0);
        assert!((d.variance() - 16.0 / 12.0).abs() < 1e-12);
        assert_eq!(d.entropy_nats(), 4.0f64.ln());
        assert_eq!(d.pdf(1.0), 0.0);
        assert_eq!(d.pdf(3.0), 0.25);
        assert_eq!(d.cdf(2.0), 0.0);
        assert_eq!(d.cdf(6.0), 1.0);
        assert_eq!(d.cdf(4.0), 0.5);
        assert_eq!(Uniform::with_mean(30.0).hi(), 60.0);
    }

    #[test]
    fn gaussian_basics() {
        let d = Gaussian::new(0.0, 2.0);
        assert!((integrate(|x| d.pdf(x), -30.0, 30.0, 60_000) - 1.0).abs() < 1e-9);
        assert!((d.cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((d.cdf(2.0) - 0.841_344_7).abs() < 1e-5);
        let expected_h = 0.5 * (2.0 * std::f64::consts::PI * std::f64::consts::E * 4.0).ln();
        assert!((d.entropy_nats() - expected_h).abs() < 1e-12);
    }

    #[test]
    fn erlang_matches_exponential_at_shape_one() {
        let erl = ErlangDist::new(1, 0.2);
        let exp = Exponential::new(0.2);
        for &x in &[0.0, 0.5, 3.0, 10.0] {
            assert!((erl.pdf(x) - exp.pdf(x)).abs() < 1e-12);
            assert!((erl.cdf(x) - exp.cdf(x)).abs() < 1e-12);
        }
        assert!((erl.entropy_nats() - exp.entropy_nats()).abs() < 1e-10);
    }

    #[test]
    fn erlang_entropy_vs_numeric() {
        let d = ErlangDist::new(5, 0.5); // mean 10
        let hi = 120.0;
        let num = integrate(
            |x| {
                let p = d.pdf(x);
                if p > 0.0 {
                    -p * p.ln()
                } else {
                    0.0
                }
            },
            0.0,
            hi,
            400_000,
        );
        assert!(
            (num - d.entropy_nats()).abs() < 1e-4,
            "numeric {num} vs closed {}",
            d.entropy_nats()
        );
    }

    #[test]
    fn erlang_density_integrates_to_one() {
        let d = ErlangDist::new(15, 0.5); // the paper's X_15 at 1/lambda = 2
        assert_eq!(d.mean(), 30.0);
        let total = integrate(|x| d.pdf(x), 0.0, 200.0, 100_000);
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_cdf_is_step() {
        let d = Degenerate::new(5.0);
        assert_eq!(d.cdf(4.999), 0.0);
        assert_eq!(d.cdf(5.0), 1.0);
        assert_eq!(d.mean(), 5.0);
        assert_eq!(d.variance(), 0.0);
    }

    #[test]
    fn erf_reference_values() {
        assert!(erf(0.0).abs() < 1e-8);
        assert!((erf(1.0) - 0.842_700_8).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_700_8).abs() < 1e-5);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-5);
    }

    #[test]
    fn support_hints_cover_mass() {
        let eps = 1e-9;
        let exp = Exponential::with_mean(30.0);
        assert!(exp.cdf(exp.support_hint(eps)) > 1.0 - 1e-8);
        let erl = ErlangDist::new(10, 0.1);
        assert!(erl.cdf(erl.support_hint(eps)) > 1.0 - 1e-6);
    }
}

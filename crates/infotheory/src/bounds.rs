//! The bits-through-queues leakage bounds (paper §3.2, eq. 4).
//!
//! For a Poisson source of rate λ (so the j-th creation time `X_j` is
//! j-stage Erlangian) delayed by an independent exponential of rate μ,
//! Theorem 3(d) of Anantharam & Verdú's *Bits Through Queues* gives
//!
//! ```text
//! I(X_j; Z_j) ≤ ln(1 + jμ/λ)
//! ```
//!
//! and summing over a stream of `n` packets (paper eq. 4):
//!
//! ```text
//! I(Xⁿ; Zⁿ) ≤ Σ_{j=1..n} ln(1 + jμ/λ).
//! ```
//!
//! The data-processing inequality on `Xⁿ → Zⁿ → Z̃ⁿ` (the adversary only
//! sees *sorted* arrivals, §3.2) pinches the sorted-observation leakage by
//! the same bound: `0 ≤ I(Xⁿ; Z̃ⁿ) ≤ I(Xⁿ; Zⁿ)`. The designer's knob is
//! μ/λ: a mean delay `1/μ` large relative to the inter-arrival time `1/λ`
//! drives every term toward zero.

/// Per-packet leakage bound `ln(1 + jμ/λ)` in nats for the j-th packet.
///
/// # Panics
///
/// Panics if `j == 0` or the rates are non-positive or not finite.
///
/// # Examples
///
/// ```
/// use tempriv_infotheory::bounds::btq_packet_bound_nats;
///
/// // Slower delays (smaller mu) leak less.
/// let fast = btq_packet_bound_nats(1, 1.0 / 3.0, 0.5);
/// let slow = btq_packet_bound_nats(1, 1.0 / 30.0, 0.5);
/// assert!(slow < fast);
/// ```
#[must_use]
pub fn btq_packet_bound_nats(j: u64, mu: f64, lambda: f64) -> f64 {
    assert!(j > 0, "packets are indexed from 1");
    check_rates(mu, lambda);
    (1.0 + j as f64 * mu / lambda).ln()
}

/// Cumulative stream bound `Σ_{j=1..n} ln(1 + jμ/λ)` in nats (eq. 4).
///
/// # Panics
///
/// Panics if `n == 0` or the rates are non-positive or not finite.
#[must_use]
pub fn btq_stream_bound_nats(n: u64, mu: f64, lambda: f64) -> f64 {
    assert!(n > 0, "need at least one packet");
    check_rates(mu, lambda);
    (1..=n).map(|j| (1.0 + j as f64 * mu / lambda).ln()).sum()
}

/// The delay rate μ that keeps the *first-packet* leakage bound at
/// `target_nats` for a source of rate λ — the analytic counterpart of
/// "tune μ small relative to λ" (§3.2).
///
/// # Panics
///
/// Panics if `target_nats <= 0` or `lambda` is non-positive or not finite.
#[must_use]
pub fn mu_for_packet_bound(target_nats: f64, lambda: f64) -> f64 {
    assert!(
        target_nats.is_finite() && target_nats > 0.0,
        "target leakage must be positive, got {target_nats}"
    );
    assert!(
        lambda.is_finite() && lambda > 0.0,
        "source rate must be positive, got {lambda}"
    );
    // ln(1 + mu/lambda) = t  =>  mu = lambda (e^t - 1).
    lambda * (target_nats.exp() - 1.0)
}

fn check_rates(mu: f64, lambda: f64) {
    assert!(
        mu.is_finite() && mu > 0.0,
        "delay rate must be positive, got {mu}"
    );
    assert!(
        lambda.is_finite() && lambda > 0.0,
        "source rate must be positive, got {lambda}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{ErlangDist, Exponential};
    use crate::mutual_information::mi_additive_nats;

    #[test]
    fn bound_grows_with_packet_index() {
        let mut prev = 0.0;
        for j in 1..20 {
            let b = btq_packet_bound_nats(j, 1.0 / 30.0, 0.5);
            assert!(b > prev);
            prev = b;
        }
    }

    #[test]
    fn stream_bound_is_sum_of_packet_bounds() {
        let (mu, lambda) = (0.1, 0.5);
        let direct: f64 = (1..=10).map(|j| btq_packet_bound_nats(j, mu, lambda)).sum();
        assert!((btq_stream_bound_nats(10, mu, lambda) - direct).abs() < 1e-12);
    }

    #[test]
    fn paper_tuning_direction() {
        // Paper: "by tuning mu to be small relative to lambda ... we can
        // control the amount of information the adversary learns".
        let lambda = 0.5;
        let leak_30 = btq_stream_bound_nats(1000, 1.0 / 30.0, lambda);
        let leak_300 = btq_stream_bound_nats(1000, 1.0 / 300.0, lambda);
        assert!(leak_300 < leak_30);
    }

    #[test]
    fn numeric_mi_respects_the_bound() {
        // I(X_j; Z_j) for X_j ~ Erlang(j, lambda), Y ~ Exp(mu) must sit
        // below ln(1 + j mu / lambda).
        let lambda = 0.5;
        let mu = 1.0 / 30.0;
        for j in [1u32, 3, 8] {
            let x = ErlangDist::new(j, lambda);
            let y = Exponential::new(mu);
            let mi = mi_additive_nats(&x, &y, 4_000);
            let bound = btq_packet_bound_nats(j as u64, mu, lambda);
            assert!(mi <= bound + 5e-3, "j = {j}: MI {mi} exceeds bound {bound}");
        }
    }

    #[test]
    fn mu_solver_inverts_bound() {
        let lambda = 0.5;
        for &target in &[0.05, 0.2, 1.0] {
            let mu = mu_for_packet_bound(target, lambda);
            let achieved = btq_packet_bound_nats(1, mu, lambda);
            assert!((achieved - target).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "indexed from 1")]
    fn zero_packet_index_rejected() {
        let _ = btq_packet_bound_nats(0, 0.1, 0.5);
    }
}

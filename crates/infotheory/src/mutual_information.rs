//! Mutual information of the additive-delay channel (paper §3.1).
//!
//! The adversary observes `Z = X + Y`: creation time plus buffering delay.
//! The information leaked about `X` is
//!
//! ```text
//! I(X; Z) = h(Z) − h(Z | X) = h(X + Y) − h(Y)        (paper eq. 1)
//! ```
//!
//! and the designer's problem is `min_{f_Y} I(X; Z)` (paper eq. "min").
//! This module evaluates `I(X; Z)` numerically for arbitrary creation and
//! delay laws, and provides the entropy-power-inequality lower bound
//! (paper eq. 2) showing the leakage can never be driven to zero by any
//! finite-latency delay distribution.

use crate::distributions::ContinuousDist;
use crate::grid::GridDensity;

/// Numeric evaluation of `I(X; Z) = h(X + Y) − h(Y)` in nats.
///
/// Both laws are discretized on a shared grid of roughly `points` samples
/// covering all but `1e−9` of each distribution's mass, convolved, and
/// integrated. Accuracy is limited by the grid (≈1e-3 nats at the default
/// resolution used in the tests).
///
/// # Panics
///
/// Panics if `points < 16`.
///
/// # Examples
///
/// ```
/// use tempriv_infotheory::distributions::Exponential;
/// use tempriv_infotheory::mutual_information::mi_additive_nats;
///
/// // Heavier delay (larger mean Y) leaks less about X.
/// let x = Exponential::with_mean(2.0);
/// let light = mi_additive_nats(&x, &Exponential::with_mean(5.0), 4_000);
/// let heavy = mi_additive_nats(&x, &Exponential::with_mean(50.0), 4_000);
/// assert!(heavy < light);
/// ```
#[must_use]
pub fn mi_additive_nats<X, Y>(fx: &X, fy: &Y, points: usize) -> f64
where
    X: ContinuousDist + ?Sized,
    Y: ContinuousDist + ?Sized,
{
    assert!(points >= 16, "need at least 16 grid points, got {points}");
    const EPS: f64 = 1e-9;
    let hi_x = fx.support_hint(EPS);
    let hi_y = fy.support_hint(EPS);
    // One shared step so the grids convolve; each grid gets enough points
    // to cover its own support at that step.
    let step = hi_x.max(hi_y) / points as f64;
    let nx = ((hi_x / step).ceil() as usize).max(2) + 1;
    let ny = ((hi_y / step).ceil() as usize).max(2) + 1;
    let gx = GridDensity::from_dist(fx, step * (nx - 1) as f64, nx);
    let gy = GridDensity::from_dist(fy, step * (ny - 1) as f64, ny);
    let gz = gx.convolve(&gy);
    gz.entropy_nats() - gy.entropy_nats()
}

/// Entropy-power-inequality lower bound on the leakage (paper eq. 2):
///
/// ```text
/// I(X; Z) ≥ ½·ln(e^{2h(X)} + e^{2h(Y)}) − h(Y)   (nats)
/// ```
///
/// Evaluated stably in log space so extreme entropies cannot overflow.
#[must_use]
pub fn epi_lower_bound_nats(h_x: f64, h_y: f64) -> f64 {
    // ln(e^{2hx} + e^{2hy}) = 2*max + ln(1 + e^{2(min - max)}).
    let (a, b) = (2.0 * h_x, 2.0 * h_y);
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    let log_sum = hi + (1.0 + (lo - hi).exp()).ln();
    0.5 * log_sum - h_y
}

/// Exact leakage of the Gaussian additive channel,
/// `I = ½·ln(1 + Var X / Var Y)` — used to validate the numeric path.
#[must_use]
pub fn gaussian_channel_mi_nats(var_x: f64, var_y: f64) -> f64 {
    assert!(var_x > 0.0 && var_y > 0.0, "variances must be positive");
    0.5 * (1.0 + var_x / var_y).ln()
}

/// Converts nats to bits.
#[must_use]
pub fn nats_to_bits(nats: f64) -> f64 {
    nats / std::f64::consts::LN_2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{ContinuousDist, Exponential, Gaussian, Uniform};

    #[test]
    fn gaussian_numeric_matches_closed_form() {
        let x = Gaussian::new(50.0, 3.0);
        let y = Gaussian::new(50.0, 4.0);
        let numeric = mi_additive_nats(&x, &y, 6_000);
        let exact = gaussian_channel_mi_nats(9.0, 16.0);
        assert!(
            (numeric - exact).abs() < 5e-3,
            "numeric {numeric} vs exact {exact}"
        );
    }

    #[test]
    fn epi_bound_is_tight_for_gaussians() {
        // The EPI holds with equality for Gaussian X and Y.
        let x = Gaussian::new(0.0, 3.0);
        let y = Gaussian::new(0.0, 4.0);
        let bound = epi_lower_bound_nats(x.entropy_nats(), y.entropy_nats());
        let exact = gaussian_channel_mi_nats(9.0, 16.0);
        assert!((bound - exact).abs() < 1e-12);
    }

    #[test]
    fn epi_bound_below_numeric_for_exponentials() {
        let x = Exponential::with_mean(2.0);
        let y = Exponential::with_mean(30.0);
        let bound = epi_lower_bound_nats(x.entropy_nats(), y.entropy_nats());
        let numeric = mi_additive_nats(&x, &y, 6_000);
        assert!(
            bound <= numeric + 1e-3,
            "EPI bound {bound} exceeds numeric MI {numeric}"
        );
        assert!(numeric > 0.0);
    }

    #[test]
    fn leakage_decreases_with_delay_mean() {
        let x = Exponential::with_mean(2.0);
        let mut prev = f64::INFINITY;
        for mean_y in [2.0, 8.0, 32.0, 128.0] {
            let mi = mi_additive_nats(&x, &Exponential::with_mean(mean_y), 4_000);
            assert!(
                mi < prev,
                "MI not decreasing at mean {mean_y}: {mi} vs {prev}"
            );
            assert!(mi >= -1e-6);
            prev = mi;
        }
    }

    #[test]
    fn exponential_delay_beats_uniform_and_it_shows_in_mi() {
        // At equal delay *mean*, the max-entropy exponential leaks less
        // than a uniform delay for an exponential source — the paper's
        // argument for choosing exponential delays.
        let x = Exponential::with_mean(2.0);
        let mi_exp = mi_additive_nats(&x, &Exponential::with_mean(30.0), 6_000);
        let mi_uni = mi_additive_nats(&x, &Uniform::with_mean(30.0), 6_000);
        assert!(
            mi_exp < mi_uni,
            "exponential {mi_exp} should leak less than uniform {mi_uni}"
        );
    }

    #[test]
    fn nats_bits_conversion() {
        assert!((nats_to_bits(std::f64::consts::LN_2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_channel_leaks_half_its_entropy_budget() {
        // X and Y i.i.d. => I(X;Z) is strictly positive and below h(Z).
        let x = Exponential::with_mean(10.0);
        let mi = mi_additive_nats(&x, &x, 4_000);
        assert!(mi > 0.2 && mi < 1.0, "MI {mi}");
    }
}

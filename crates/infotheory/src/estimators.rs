//! Empirical estimators: entropy and mutual information from samples.
//!
//! The simulator produces (creation time, arrival time) pairs; these
//! estimators turn them into empirical leakage numbers that can be checked
//! against the closed-form bounds of [`crate::bounds`]. They are standard
//! histogram plug-in estimators — biased upward in the number of bins, so
//! validations use moderate bin counts and generous sample sizes.
//!
//! The module also carries the MSE↔information bridge the paper leans on
//! when it swaps the mutual-information metric for the adversary's mean
//! square error (§2.1, §5.1, citing Guo–Shamai–Verdú).

use std::collections::HashMap;
use std::fmt;

/// Why a histogram plug-in estimate could not be computed.
///
/// The estimators reject, rather than panic on, data conditions a caller
/// cannot always rule out up front — simulator output flows through them
/// unattended inside the telemetry stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimateError {
    /// Fewer than the two samples any spread-based estimate needs.
    TooFewSamples {
        /// How many samples were actually supplied.
        got: usize,
    },
    /// Paired samples of different lengths.
    LengthMismatch {
        /// Length of the `xs` slice.
        xs: usize,
        /// Length of the `zs` slice.
        zs: usize,
    },
    /// A sample was NaN or infinite.
    NonFinite,
    /// A histogram with zero bins was requested.
    ZeroBins,
    /// All samples are identical: the empirical law is a point mass, whose
    /// differential entropy diverges to `−∞`.
    ConstantSamples,
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EstimateError::TooFewSamples { got } => {
                write!(f, "need at least two samples, got {got}")
            }
            EstimateError::LengthMismatch { xs, zs } => {
                write!(f, "paired samples must align: {xs} xs vs {zs} zs")
            }
            EstimateError::NonFinite => write!(f, "samples must be finite (no NaN/inf)"),
            EstimateError::ZeroBins => write!(f, "need at least one bin"),
            EstimateError::ConstantSamples => {
                write!(f, "constant samples: differential entropy diverges to -inf")
            }
        }
    }
}

impl std::error::Error for EstimateError {}

/// Differential entropy estimate (nats) from scalar samples, via an
/// equal-width histogram: `Ĥ = H_discrete + ln(bin width)`.
///
/// # Errors
///
/// * [`EstimateError::TooFewSamples`] below 2 samples,
/// * [`EstimateError::ZeroBins`] for `bins == 0`,
/// * [`EstimateError::NonFinite`] if any sample is NaN or infinite,
/// * [`EstimateError::ConstantSamples`] when every sample is identical
///   (the point-mass law has `h = −∞`; previously this silently returned
///   `ln(f64::MIN_POSITIVE) ≈ −708`).
pub fn entropy_from_samples_nats(samples: &[f64], bins: usize) -> Result<f64, EstimateError> {
    if bins == 0 {
        return Err(EstimateError::ZeroBins);
    }
    if samples.len() < 2 {
        return Err(EstimateError::TooFewSamples { got: samples.len() });
    }
    let (lo, hi) = min_max(samples)?;
    if lo == hi {
        return Err(EstimateError::ConstantSamples);
    }
    let width = (hi - lo) / bins as f64;
    let mut counts = vec![0u64; bins];
    for &x in samples {
        let idx = (((x - lo) / width) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    let n = samples.len() as f64;
    let h_disc: f64 = counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum();
    Ok(h_disc + width.ln())
}

/// Mutual information estimate (nats) between paired samples, via a 2-D
/// equal-width histogram: `Î = Σ p(x,z)·ln(p(x,z)/(p(x)p(z)))`.
///
/// A *constant axis* is fine here (unlike for the entropy estimator): all
/// its mass lands in one bin and the estimate is correctly `0` — a
/// degenerate coordinate reveals nothing.
///
/// # Errors
///
/// * [`EstimateError::LengthMismatch`] if the slices differ in length,
/// * [`EstimateError::TooFewSamples`] below 2 pairs,
/// * [`EstimateError::ZeroBins`] for `bins == 0`,
/// * [`EstimateError::NonFinite`] if any coordinate is NaN or infinite.
///
/// # Examples
///
/// ```
/// use tempriv_infotheory::estimators::mi_from_samples_nats;
///
/// // Independent-ish pairs carry (almost) no information.
/// let xs: Vec<f64> = (0..500).map(|i| (i % 23) as f64).collect();
/// let zs: Vec<f64> = (0..500).map(|i| (i % 7) as f64).collect();
/// let mi = mi_from_samples_nats(&xs, &zs, 8).unwrap();
/// assert!(mi < 0.25);
/// ```
pub fn mi_from_samples_nats(xs: &[f64], zs: &[f64], bins: usize) -> Result<f64, EstimateError> {
    if xs.len() != zs.len() {
        return Err(EstimateError::LengthMismatch {
            xs: xs.len(),
            zs: zs.len(),
        });
    }
    if bins == 0 {
        return Err(EstimateError::ZeroBins);
    }
    if xs.len() < 2 {
        return Err(EstimateError::TooFewSamples { got: xs.len() });
    }
    let (xlo, xhi) = min_max(xs)?;
    let (zlo, zhi) = min_max(zs)?;
    let xw = ((xhi - xlo) / bins as f64).max(f64::MIN_POSITIVE);
    let zw = ((zhi - zlo) / bins as f64).max(f64::MIN_POSITIVE);
    let mut joint: HashMap<(usize, usize), u64> = HashMap::new();
    let mut px = vec![0u64; bins];
    let mut pz = vec![0u64; bins];
    for (&x, &z) in xs.iter().zip(zs) {
        let i = (((x - xlo) / xw) as usize).min(bins - 1);
        let j = (((z - zlo) / zw) as usize).min(bins - 1);
        *joint.entry((i, j)).or_insert(0) += 1;
        px[i] += 1;
        pz[j] += 1;
    }
    let n = xs.len() as f64;
    Ok(joint
        .into_iter()
        .map(|((i, j), c)| {
            let pij = c as f64 / n;
            let pi = px[i] as f64 / n;
            let pj = pz[j] as f64 / n;
            pij * (pij / (pi * pj)).ln()
        })
        .sum::<f64>()
        .max(0.0))
}

/// Information-theoretic lower bound on leakage implied by an estimator's
/// MSE: if an adversary achieves mean square error `mse` on a source with
/// variance `var_x`, then (by the Gaussian rate-distortion argument behind
/// the paper's MSE↔mutual-information link)
///
/// ```text
/// I(X; Z) ≥ ½·ln(Var X / MSE)   (nats, when MSE < Var X)
/// ```
///
/// Conversely a *small* leakage forces a *large* MSE — the reason the
/// paper can report MSE as its privacy metric.
///
/// # Panics
///
/// Panics if either argument is non-positive or not finite.
#[must_use]
pub fn mi_lower_bound_from_mse_nats(var_x: f64, mse: f64) -> f64 {
    assert!(
        var_x.is_finite() && var_x > 0.0,
        "source variance must be positive, got {var_x}"
    );
    assert!(
        mse.is_finite() && mse > 0.0,
        "MSE must be positive, got {mse}"
    );
    (0.5 * (var_x / mse).ln()).max(0.0)
}

/// The flip side of [`mi_lower_bound_from_mse_nats`]: the smallest MSE any
/// estimator can achieve given leakage `mi_nats`,
/// `MSE ≥ Var X · e^{−2I}`.
///
/// # Panics
///
/// Panics if `var_x` is non-positive/not finite or `mi_nats` is negative.
#[must_use]
pub fn mse_lower_bound_from_mi(var_x: f64, mi_nats: f64) -> f64 {
    assert!(
        var_x.is_finite() && var_x > 0.0,
        "source variance must be positive, got {var_x}"
    );
    assert!(mi_nats >= 0.0, "mutual information cannot be negative");
    var_x * (-2.0 * mi_nats).exp()
}

fn min_max(samples: &[f64]) -> Result<(f64, f64), EstimateError> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in samples {
        if !x.is_finite() {
            return Err(EstimateError::NonFinite);
        }
        lo = lo.min(x);
        hi = hi.max(x);
    }
    Ok((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn gaussian_pairs(n: usize, rho: f64, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut gauss = move || {
            // Box-Muller.
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let mut xs = Vec::with_capacity(n);
        let mut zs = Vec::with_capacity(n);
        for _ in 0..n {
            let a = gauss();
            let b = gauss();
            xs.push(a);
            zs.push(rho * a + (1.0 - rho * rho).sqrt() * b);
        }
        (xs, zs)
    }

    #[test]
    fn entropy_of_uniform_samples() {
        // Uniform on [0, 4): h = ln 4.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let samples: Vec<f64> = (0..100_000).map(|_| rng.gen::<f64>() * 4.0).collect();
        let h = entropy_from_samples_nats(&samples, 64).unwrap();
        assert!((h - 4.0f64.ln()).abs() < 0.02, "h = {h}");
    }

    #[test]
    fn entropy_of_exponential_samples() {
        // Exp(mean 30): h = 1 + ln 30 ≈ 4.401.
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let samples: Vec<f64> = (0..200_000)
            .map(|_| -30.0 * (1.0 - rng.gen::<f64>()).ln())
            .collect();
        let h = entropy_from_samples_nats(&samples, 128).unwrap();
        assert!((h - (1.0 + 30.0f64.ln())).abs() < 0.1, "h = {h}");
    }

    #[test]
    fn mi_of_correlated_gaussians_matches_closed_form() {
        // I = -0.5 ln(1 - rho^2).
        let rho = 0.8f64;
        let (xs, zs) = gaussian_pairs(200_000, rho, 7);
        let mi = mi_from_samples_nats(&xs, &zs, 24).unwrap();
        let exact = -0.5 * (1.0 - rho * rho).ln();
        assert!((mi - exact).abs() < 0.06, "MI {mi} vs exact {exact}");
    }

    #[test]
    fn mi_of_independent_gaussians_is_near_zero() {
        let (xs, zs) = gaussian_pairs(100_000, 0.0, 8);
        let mi = mi_from_samples_nats(&xs, &zs, 16).unwrap();
        assert!(mi < 0.01, "MI {mi}");
    }

    #[test]
    fn mi_is_monotone_in_correlation() {
        let mut prev = -1.0;
        for &rho in &[0.2, 0.5, 0.8, 0.95] {
            let (xs, zs) = gaussian_pairs(60_000, rho, 9);
            let mi = mi_from_samples_nats(&xs, &zs, 20).unwrap();
            assert!(mi > prev, "rho {rho}: {mi} !> {prev}");
            prev = mi;
        }
    }

    #[test]
    fn mse_mi_bridge_round_trips() {
        let var_x = 100.0;
        for &mi in &[0.1, 0.5, 2.0] {
            let mse = mse_lower_bound_from_mi(var_x, mi);
            let back = mi_lower_bound_from_mse_nats(var_x, mse);
            assert!((back - mi).abs() < 1e-12);
        }
    }

    #[test]
    fn mse_bound_saturates_at_zero_information() {
        // No leakage: the best estimator can do no better than Var X.
        assert_eq!(mse_lower_bound_from_mi(50.0, 0.0), 50.0);
        // MSE worse than the variance yields the trivial zero bound.
        assert_eq!(mi_lower_bound_from_mse_nats(50.0, 80.0), 0.0);
    }

    #[test]
    fn mismatched_pairs_are_an_error_not_a_panic() {
        assert_eq!(
            mi_from_samples_nats(&[1.0, 2.0], &[1.0], 4),
            Err(EstimateError::LengthMismatch { xs: 2, zs: 1 })
        );
    }

    #[test]
    fn non_finite_samples_are_an_error_not_a_panic() {
        assert_eq!(
            entropy_from_samples_nats(&[1.0, f64::NAN], 4),
            Err(EstimateError::NonFinite)
        );
        assert_eq!(
            mi_from_samples_nats(&[1.0, f64::INFINITY], &[0.0, 1.0], 4),
            Err(EstimateError::NonFinite)
        );
    }

    #[test]
    fn degenerate_inputs_are_errors_with_readable_messages() {
        assert_eq!(
            entropy_from_samples_nats(&[1.0], 4),
            Err(EstimateError::TooFewSamples { got: 1 })
        );
        assert_eq!(
            entropy_from_samples_nats(&[1.0, 2.0], 0),
            Err(EstimateError::ZeroBins)
        );
        assert_eq!(
            entropy_from_samples_nats(&[3.0; 50], 4),
            Err(EstimateError::ConstantSamples)
        );
        let msg = EstimateError::ConstantSamples.to_string();
        assert!(msg.contains("diverges"), "{msg}");
        assert!(EstimateError::TooFewSamples { got: 1 }
            .to_string()
            .contains("got 1"));
    }

    #[test]
    fn constant_axis_is_fine_for_mi_and_yields_zero() {
        // A degenerate coordinate reveals nothing; the estimator should
        // say 0, not error (only *entropy* of a constant diverges).
        let xs = vec![7.0; 100];
        let zs: Vec<f64> = (0..100).map(f64::from).collect();
        assert_eq!(mi_from_samples_nats(&xs, &zs, 8), Ok(0.0));
    }
}

//! Streaming estimators: online entropy/MI with O(1) per-sample updates.
//!
//! The batch estimators in [`crate::estimators`] need every `(X, Z)` pair
//! in memory before they can say anything. This module provides the
//! observability-stack counterparts that run *while* a simulation is in
//! flight:
//!
//! * [`Welford`] — numerically stable running mean/variance,
//! * [`StreamingMi`] — a fixed-memory adaptive 2-D histogram yielding a
//!   plug-in mutual-information estimate at any point in the stream,
//! * [`StreamingMse`] — a running adversary mean-square-error tracker
//!   that converts to an MI lower bound via the Guo–Shamai–Verdú bridge
//!   (the `Option`-returning, panic-free sibling of
//!   [`crate::estimators::mi_lower_bound_from_mse_nats`]).
//!
//! # Order independence
//!
//! [`StreamingMi`] bins on an *origin-centered dyadic grid*: each axis
//! covers `[-B·w, B·w)` in `bins` cells of width `w = w₀·2ᵏ` (with
//! `B = bins / 2` and a fixed base width `w₀ = 2⁻¹⁶`). When a sample
//! falls outside the covered range the width doubles and adjacent cells
//! merge — an *exact* aggregation, because `⌊⌊v/w⌋ / 2⌋ = ⌊v/2w⌋`. The
//! final width therefore depends only on the largest `|v|` seen, never on
//! arrival order, so the finished histogram — and the MI estimate read
//! from it — is bit-identical under any permutation of the input stream.
//! (Trade-off: data confined to `|v| ≪ w₀` is resolved by at most one
//! cell per axis; simulation times are unit-scale or larger, far above
//! that floor.)
//!
//! Estimators never panic on data: non-finite samples are skipped and
//! counted in [`StreamingMi::rejected`] / [`StreamingMse::rejected`] so a
//! telemetry probe can run unattended.

use serde::{Deserialize, Serialize};

/// Welford's online algorithm for mean and variance.
///
/// Push samples one at a time; read the running mean and *population*
/// variance at any point. Accessors saturate (return `0.0`) instead of
/// panicking when too few samples have arrived.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Welford::default()
    }

    /// Folds one sample in. Non-finite samples are ignored so a stray
    /// NaN cannot poison every later read.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Samples folded in so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean, or `0.0` before the first sample.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Running *population* variance (`m₂/n`), or `0.0` below 2 samples.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }
}

/// Base cell width of the dyadic grid (`2⁻¹⁶`): fine enough that any
/// unit-scale-or-larger data starts at full resolution.
const BASE_WIDTH: f64 = 1.0 / 65_536.0;

/// Streaming mutual-information estimator over `(X, Z)` pairs.
///
/// A fixed-memory (`bins × bins` counts) adaptive 2-D histogram on the
/// origin-centered dyadic grid described in the [module docs](self):
/// pushes are O(1) amortized, [`StreamingMi::mi_nats`] queries are
/// O(bins²) (marginals are re-derived from the joint), and the final
/// estimate is exactly permutation-invariant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingMi {
    bins: usize,
    joint: Vec<u64>,
    x_width: f64,
    z_width: f64,
    n: u64,
    rejected: u64,
    x_min: f64,
    x_max: f64,
    z_min: f64,
    z_max: f64,
}

/// Default per-axis bin count: 32 bins ⇒ 8 KiB of counts, and the MI
/// estimate is capped at `ln 32 ≈ 3.5` nats — comfortably inside the
/// eq. 4 envelopes the observatory plots it against.
pub const DEFAULT_STREAMING_BINS: usize = 32;

impl StreamingMi {
    /// A fresh estimator with `bins` cells per axis.
    ///
    /// # Panics
    ///
    /// Panics if `bins < 2` (a construction-time configuration error, not
    /// a data condition — pushes themselves never panic).
    #[must_use]
    pub fn new(bins: usize) -> Self {
        assert!(bins >= 2, "need at least two bins per axis, got {bins}");
        StreamingMi {
            bins,
            joint: vec![0; bins * bins],
            x_width: BASE_WIDTH,
            z_width: BASE_WIDTH,
            n: 0,
            rejected: 0,
            x_min: f64::INFINITY,
            x_max: f64::NEG_INFINITY,
            z_min: f64::INFINITY,
            z_max: f64::NEG_INFINITY,
        }
    }

    /// A fresh estimator with [`DEFAULT_STREAMING_BINS`] cells per axis.
    #[must_use]
    pub fn with_default_bins() -> Self {
        StreamingMi::new(DEFAULT_STREAMING_BINS)
    }

    /// Per-axis bin count (fixed at construction).
    #[must_use]
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Pairs accepted so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Pairs skipped because either coordinate was NaN or infinite.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Current cell width on the `X` axis (a power-of-two multiple of the
    /// base width; grows as the data range grows).
    #[must_use]
    pub fn x_width(&self) -> f64 {
        self.x_width
    }

    /// Current cell width on the `Z` axis.
    #[must_use]
    pub fn z_width(&self) -> f64 {
        self.z_width
    }

    /// Raw row-major joint counts (`row = X cell, column = Z cell`);
    /// exposed so tests can assert exact order-independence.
    #[must_use]
    pub fn joint_counts(&self) -> &[u64] {
        &self.joint
    }

    /// Grid cells actually spanned by the data on the `X` axis — the bin
    /// count a batch estimator needs to reproduce this resolution over
    /// `[min, max]`.
    #[must_use]
    pub fn effective_x_bins(&self) -> usize {
        Self::effective_bins(self.n, self.x_min, self.x_max, self.x_width)
    }

    /// Grid cells actually spanned by the data on the `Z` axis.
    #[must_use]
    pub fn effective_z_bins(&self) -> usize {
        Self::effective_bins(self.n, self.z_min, self.z_max, self.z_width)
    }

    fn effective_bins(n: u64, min: f64, max: f64, width: f64) -> usize {
        if n == 0 {
            return 0;
        }
        let lo = (min / width).floor() as i64;
        let hi = (max / width).floor() as i64;
        usize::try_from(hi - lo + 1).expect("cell span fits the grid")
    }

    /// Folds one `(x, z)` pair in; O(1) amortized (axis growth doubles
    /// the width, so a stream triggers at most ~⌈log₂ range⌉ merges per
    /// axis over its whole lifetime). Non-finite pairs are counted in
    /// [`StreamingMi::rejected`] and otherwise ignored.
    pub fn push(&mut self, x: f64, z: f64) {
        if !x.is_finite() || !z.is_finite() {
            self.rejected += 1;
            return;
        }
        while !self.x_in_range(x) {
            self.merge_x();
        }
        while !self.z_in_range(z) {
            self.merge_z();
        }
        let i = Self::cell(x, self.x_width, self.bins);
        let j = Self::cell(z, self.z_width, self.bins);
        self.joint[i * self.bins + j] += 1;
        self.n += 1;
        self.x_min = self.x_min.min(x);
        self.x_max = self.x_max.max(x);
        self.z_min = self.z_min.min(z);
        self.z_max = self.z_max.max(z);
    }

    /// Half-width of the covered range in cells: cells index `[0, bins)`
    /// and value `v` lands in `⌊v/w⌋ + B`.
    fn half(bins: usize) -> i64 {
        (bins / 2) as i64
    }

    fn raw_cell(v: f64, width: f64) -> i64 {
        // Covered values satisfy |v/w| <= bins, far inside i64; the
        // in-range checks below do the comparison in f64 first so this
        // cast never truncates for values we actually index with.
        (v / width).floor() as i64
    }

    fn cell(v: f64, width: f64, bins: usize) -> usize {
        usize::try_from(Self::raw_cell(v, width) + Self::half(bins)).expect("cell in range")
    }

    fn x_in_range(&self, x: f64) -> bool {
        Self::in_range(x, self.x_width, self.bins)
    }

    fn z_in_range(&self, z: f64) -> bool {
        Self::in_range(z, self.z_width, self.bins)
    }

    fn in_range(v: f64, width: f64, bins: usize) -> bool {
        let b = Self::half(bins);
        // v ∈ [-B·w, (bins − B)·w) ⇔ ⌊v/w⌋ ∈ [-B, bins − B − 1].
        let cell = (v / width).floor();
        cell >= -(b as f64) && cell <= (bins as i64 - b - 1) as f64
    }

    /// Doubles the `X` width and merges adjacent *rows*:
    /// `new = ⌊(old − B)/2⌋ + B` (floor division, so the mapping matches
    /// re-binning every value at the doubled width exactly).
    fn merge_x(&mut self) {
        let b = Self::half(self.bins);
        let mut merged = vec![0u64; self.bins * self.bins];
        for row in 0..self.bins {
            let new_row = usize::try_from((row as i64 - b).div_euclid(2) + b)
                .expect("merged row stays on the grid");
            for col in 0..self.bins {
                merged[new_row * self.bins + col] += self.joint[row * self.bins + col];
            }
        }
        self.joint = merged;
        self.x_width *= 2.0;
    }

    /// Doubles the `Z` width and merges adjacent *columns*.
    fn merge_z(&mut self) {
        let b = Self::half(self.bins);
        let mut merged = vec![0u64; self.bins * self.bins];
        for row in 0..self.bins {
            for col in 0..self.bins {
                let new_col = usize::try_from((col as i64 - b).div_euclid(2) + b)
                    .expect("merged column stays on the grid");
                merged[row * self.bins + new_col] += self.joint[row * self.bins + col];
            }
        }
        self.joint = merged;
        self.z_width *= 2.0;
    }

    /// Plug-in mutual-information estimate (nats) of everything pushed so
    /// far: `Σ p(x,z)·ln(p(x,z)/(p(x)p(z)))`, clamped at zero. Returns
    /// `0.0` below two accepted pairs. O(bins²) — intended for periodic
    /// snapshots, not per-push polling.
    #[must_use]
    pub fn mi_nats(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let mut px = vec![0u64; self.bins];
        let mut pz = vec![0u64; self.bins];
        for (row_counts, px_row) in self.joint.chunks_exact(self.bins).zip(&mut px) {
            for (&c, pz_col) in row_counts.iter().zip(&mut pz) {
                *px_row += c;
                *pz_col += c;
            }
        }
        let n = self.n as f64;
        let mut mi = 0.0;
        for (row_counts, &px_row) in self.joint.chunks_exact(self.bins).zip(&px) {
            for (&c, &pz_col) in row_counts.iter().zip(&pz) {
                if c == 0 {
                    continue;
                }
                let pij = c as f64 / n;
                let pi = px_row as f64 / n;
                let pj = pz_col as f64 / n;
                mi += pij * (pij / (pi * pj)).ln();
            }
        }
        mi.max(0.0)
    }
}

/// Running adversary mean-square-error tracker with the MSE → MI bridge.
///
/// Push `(truth, estimate)` pairs as an adversary produces estimates; the
/// tracker keeps the source variance (needed by the Guo–Shamai–Verdú
/// argument) and the mean squared error online, and converts them to an
/// information lower bound on demand — returning `None` instead of
/// panicking wherever the batch bridge would assert.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamingMse {
    x: Welford,
    err2: Welford,
    rejected: u64,
}

impl StreamingMse {
    /// An empty tracker.
    #[must_use]
    pub fn new() -> Self {
        StreamingMse::default()
    }

    /// Folds in one (true value, adversary estimate) pair. Pairs with a
    /// non-finite coordinate are counted in [`StreamingMse::rejected`]
    /// and otherwise ignored.
    pub fn push(&mut self, truth: f64, estimate: f64) {
        if !truth.is_finite() || !estimate.is_finite() {
            self.rejected += 1;
            return;
        }
        self.x.push(truth);
        self.err2.push((estimate - truth) * (estimate - truth));
    }

    /// Pairs accepted so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.x.count()
    }

    /// Pairs skipped because either coordinate was NaN or infinite.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Running population variance of the true values.
    #[must_use]
    pub fn var_x(&self) -> f64 {
        self.x.variance()
    }

    /// Running mean square error, or `None` before the first pair.
    #[must_use]
    pub fn mse(&self) -> Option<f64> {
        if self.err2.count() == 0 {
            None
        } else {
            Some(self.err2.mean())
        }
    }

    /// The leakage the observed MSE implies:
    /// `I(X;Z) ≥ ½·ln(Var X / MSE)` nats (clamped at zero), or `None`
    /// whenever variance or MSE is not yet strictly positive — exactly
    /// the inputs on which
    /// [`crate::estimators::mi_lower_bound_from_mse_nats`] would panic.
    #[must_use]
    pub fn mi_lower_bound_nats(&self) -> Option<f64> {
        let var = self.var_x();
        let mse = self.mse()?;
        if var > 0.0 && mse > 0.0 {
            Some(crate::estimators::mi_lower_bound_from_mse_nats(var, mse))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn welford_matches_two_pass_moments() {
        let mut r = rng(1);
        let samples: Vec<f64> = (0..10_000).map(|_| r.gen::<f64>() * 40.0 - 7.0).collect();
        let mut w = Welford::new();
        for &s in &samples {
            w.push(s);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        assert_eq!(w.count(), 10_000);
        assert!((w.mean() - mean).abs() < 1e-9, "{} vs {mean}", w.mean());
        assert!(
            (w.variance() - var).abs() < 1e-9,
            "{} vs {var}",
            w.variance()
        );
    }

    #[test]
    fn welford_saturates_instead_of_panicking() {
        let mut w = Welford::new();
        assert_eq!((w.count(), w.mean(), w.variance()), (0, 0.0, 0.0));
        w.push(f64::NAN);
        w.push(f64::INFINITY);
        assert_eq!(w.count(), 0, "non-finite samples are ignored");
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0, "variance saturates below 2 samples");
    }

    #[test]
    fn streaming_mi_is_zero_for_tiny_or_rejected_streams() {
        let mut mi = StreamingMi::with_default_bins();
        assert_eq!(mi.mi_nats(), 0.0);
        mi.push(f64::NAN, 1.0);
        mi.push(1.0, f64::INFINITY);
        assert_eq!((mi.count(), mi.rejected()), (0, 2));
        mi.push(5.0, 5.0);
        assert_eq!(mi.mi_nats(), 0.0, "one pair carries no information");
    }

    #[test]
    fn identical_coordinates_leak_their_full_entropy() {
        // Z = X exactly: I(X;Z) = H(X); with k equally hit cells that is
        // ln k, the estimator's cap.
        let mut mi = StreamingMi::new(16);
        for i in 0..800 {
            let v = f64::from(i % 8) * 2.0; // 8 distinct unit-scale values
            mi.push(v, v);
        }
        let est = mi.mi_nats();
        assert!((est - 8.0f64.ln()).abs() < 1e-9, "MI {est}");
    }

    #[test]
    fn independent_axes_carry_no_information() {
        let mut mi = StreamingMi::new(8);
        for i in 0..900u32 {
            mi.push(f64::from(i % 5), f64::from(i % 9));
        }
        // (i mod 5, i mod 9) cycles through all 45 combinations evenly.
        assert!(mi.mi_nats() < 1e-9, "MI {}", mi.mi_nats());
    }

    #[test]
    fn growth_merges_are_exact_so_order_cannot_matter() {
        // A stream spanning several dyadic doublings (range ~1e4) pushed
        // in three different orders must land on bit-identical joints.
        let mut r = rng(2);
        let pairs: Vec<(f64, f64)> = (0..5_000)
            .map(|_| {
                let x = r.gen::<f64>() * 12_000.0 - 1_000.0;
                (x, x + r.gen::<f64>() * 90.0)
            })
            .collect();
        let mut forward = StreamingMi::new(24);
        let mut backward = StreamingMi::new(24);
        let mut strided = StreamingMi::new(24);
        for &(x, z) in &pairs {
            forward.push(x, z);
        }
        for &(x, z) in pairs.iter().rev() {
            backward.push(x, z);
        }
        for k in 0..pairs.len() {
            let (x, z) = pairs[(k * 2_741) % pairs.len()]; // 2741 coprime to 5000
            strided.push(x, z);
        }
        assert_eq!(forward.joint_counts(), backward.joint_counts());
        assert_eq!(forward.joint_counts(), strided.joint_counts());
        assert_eq!(forward.x_width(), backward.x_width());
        assert_eq!(forward.z_width(), strided.z_width());
        assert!(forward.mi_nats() == backward.mi_nats());
        assert!(forward.mi_nats() == strided.mi_nats());
    }

    #[test]
    fn huge_and_negative_values_grow_without_panicking() {
        let mut mi = StreamingMi::new(8);
        mi.push(1.0, 1.0);
        mi.push(-3.0e12, 2.0e12);
        mi.push(7.5, -2.0);
        assert_eq!(mi.count(), 3);
        assert!(mi.x_width() > 1e10);
        let total: u64 = mi.joint_counts().iter().sum();
        assert_eq!(total, 3, "no counts lost across merges");
    }

    #[test]
    fn effective_bins_track_the_occupied_span() {
        let mut mi = StreamingMi::new(32);
        for i in 0..640 {
            let v = f64::from(i) * 0.5; // spans [0, 320)
            mi.push(v, v + 1.0);
        }
        let (bx, bz) = (mi.effective_x_bins(), mi.effective_z_bins());
        // Width has grown to cover 320 within 16 half-range cells: w = 32.
        assert_eq!(mi.x_width(), 32.0);
        assert!((10..=16).contains(&bx), "x bins {bx}");
        assert!((10..=16).contains(&bz), "z bins {bz}");
    }

    #[test]
    fn streaming_mse_matches_hand_computed_bridge() {
        let mut t = StreamingMse::new();
        assert_eq!(t.mse(), None);
        assert_eq!(t.mi_lower_bound_nats(), None);
        // Truth alternates +-10 (variance 100); estimates are off by 2.
        for i in 0..1_000 {
            let truth = if i % 2 == 0 { 10.0 } else { -10.0 };
            t.push(truth, truth + 2.0);
        }
        assert_eq!(t.count(), 1_000);
        assert!((t.var_x() - 100.0).abs() < 1e-9);
        assert!((t.mse().unwrap() - 4.0).abs() < 1e-12);
        let bridge = t.mi_lower_bound_nats().unwrap();
        assert!((bridge - 0.5 * (100.0f64 / 4.0).ln()).abs() < 1e-9);
    }

    #[test]
    fn streaming_mse_returns_none_where_batch_bridge_panics() {
        let mut t = StreamingMse::new();
        t.push(5.0, 5.0);
        t.push(5.0, 5.0);
        // Zero variance and zero MSE: the batch fn would assert.
        assert_eq!(t.mi_lower_bound_nats(), None);
        t.push(f64::NAN, 1.0);
        assert_eq!(t.rejected(), 1);
        assert_eq!(t.count(), 2);
    }
}

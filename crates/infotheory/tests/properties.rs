//! Property-based tests for the information-theoretic machinery.

use proptest::prelude::*;
use tempriv_infotheory::bounds::{btq_packet_bound_nats, mu_for_packet_bound};
use tempriv_infotheory::distributions::{
    ContinuousDist, ErlangDist, Exponential, Gaussian, Uniform,
};
use tempriv_infotheory::estimators::{
    mi_from_samples_nats, mi_lower_bound_from_mse_nats, mse_lower_bound_from_mi,
};
use tempriv_infotheory::grid::GridDensity;
use tempriv_infotheory::mutual_information::{epi_lower_bound_nats, gaussian_channel_mi_nats};
use tempriv_infotheory::special::{digamma, ln_gamma};
use tempriv_infotheory::streaming::StreamingMi;

proptest! {
    /// Exponential entropy closed form: h = 1 + ln(mean), increasing in
    /// the mean — longer delays always hide more.
    #[test]
    fn exponential_entropy_monotone(mean in 0.01f64..1e4) {
        let d = Exponential::with_mean(mean);
        prop_assert!((d.entropy_nats() - (1.0 + mean.ln())).abs() < 1e-10);
        let bigger = Exponential::with_mean(mean * 2.0);
        prop_assert!(bigger.entropy_nats() > d.entropy_nats());
    }

    /// At any fixed mean, exponential >= uniform >= degenerate entropy —
    /// the §3.1 max-entropy ordering used to justify exponential delays.
    #[test]
    fn max_entropy_ordering(mean in 0.01f64..1e4) {
        let e = Exponential::with_mean(mean).entropy_nats();
        let u = Uniform::with_mean(mean).entropy_nats();
        prop_assert!(e > u);
    }

    /// CDFs are monotone and land in [0,1] for every shipped distribution.
    #[test]
    fn cdfs_are_distribution_functions(
        mean in 0.1f64..100.0,
        shape in 1u32..30,
        xs in prop::collection::vec(-10.0f64..500.0, 1..30),
    ) {
        let dists: Vec<Box<dyn ContinuousDist>> = vec![
            Box::new(Exponential::with_mean(mean)),
            Box::new(Uniform::with_mean(mean)),
            Box::new(ErlangDist::new(shape, shape as f64 / mean)),
            Box::new(Gaussian::new(mean, mean / 2.0)),
        ];
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for d in &dists {
            let mut prev = 0.0;
            for &x in &sorted {
                let c = d.cdf(x);
                prop_assert!((-1e-12..=1.0 + 1e-9).contains(&c));
                prop_assert!(c >= prev - 1e-9);
                prev = c;
            }
        }
    }

    /// Gridded densities integrate to one and reproduce the source mean.
    #[test]
    fn grid_density_preserves_mass_and_mean(mean in 0.5f64..50.0) {
        let d = Exponential::with_mean(mean);
        let g = GridDensity::from_dist(&d, mean * 30.0, 4_000);
        prop_assert!((g.integral() - 1.0).abs() < 1e-9);
        prop_assert!((g.mean() - mean).abs() < 0.02 * mean);
    }

    /// Convolution preserves total mass and adds means.
    #[test]
    fn convolution_adds_means(a in 0.5f64..20.0, b in 0.5f64..20.0) {
        let hi = (a + b) * 25.0;
        let step_src = hi / 3_000.0;
        let na = ((a * 25.0) / step_src).ceil() as usize + 2;
        let nb = ((b * 25.0) / step_src).ceil() as usize + 2;
        let ga = GridDensity::from_dist(&Exponential::with_mean(a), step_src * (na - 1) as f64, na);
        let gb = GridDensity::from_dist(&Exponential::with_mean(b), step_src * (nb - 1) as f64, nb);
        let sum = ga.convolve(&gb);
        prop_assert!((sum.integral() - 1.0).abs() < 1e-9);
        prop_assert!(
            (sum.mean() - (a + b)).abs() < 0.05 * (a + b),
            "mean {} vs {}",
            sum.mean(),
            a + b
        );
    }

    /// The EPI lower bound never exceeds the exact Gaussian-channel MI
    /// (it is tight there), for any variance pair.
    #[test]
    fn epi_tight_for_gaussians(vx in 0.01f64..1e4, vy in 0.01f64..1e4) {
        let hx = Gaussian::new(0.0, vx.sqrt()).entropy_nats();
        let hy = Gaussian::new(0.0, vy.sqrt()).entropy_nats();
        let bound = epi_lower_bound_nats(hx, hy);
        let exact = gaussian_channel_mi_nats(vx, vy);
        prop_assert!((bound - exact).abs() < 1e-9);
    }

    /// The BTQ bound is positive, increasing in j and mu, decreasing in
    /// lambda; and its mu-solver inverts exactly.
    #[test]
    fn btq_bound_shape(j in 1u64..1_000, mu in 0.001f64..10.0, lambda in 0.001f64..10.0) {
        let b = btq_packet_bound_nats(j, mu, lambda);
        prop_assert!(b > 0.0);
        prop_assert!(btq_packet_bound_nats(j + 1, mu, lambda) > b);
        prop_assert!(btq_packet_bound_nats(j, mu * 2.0, lambda) > b);
        prop_assert!(btq_packet_bound_nats(j, mu, lambda * 2.0) < b);
        let solved = mu_for_packet_bound(b, lambda);
        prop_assert!((btq_packet_bound_nats(1, solved, lambda) - b).abs() < 1e-9);
    }

    /// The MSE <-> MI bridge round-trips and is monotone the right way.
    #[test]
    fn mse_mi_bridge_round_trip(var_x in 0.01f64..1e6, mi in 0.0f64..5.0) {
        let mse = mse_lower_bound_from_mi(var_x, mi);
        prop_assert!(mse <= var_x + 1e-9);
        if mse > 0.0 {
            let back = mi_lower_bound_from_mse_nats(var_x, mse);
            prop_assert!((back - mi).abs() < 1e-9);
        }
    }

    /// ln_gamma satisfies the functional equation and digamma is its
    /// logarithmic derivative.
    #[test]
    fn gamma_functional_equation(x in 0.1f64..50.0) {
        prop_assert!((ln_gamma(x + 1.0) - ln_gamma(x) - x.ln()).abs() < 1e-9);
        prop_assert!((digamma(x + 1.0) - digamma(x) - 1.0 / x).abs() < 1e-9);
    }

    /// The streaming MI estimator is exactly permutation invariant: the
    /// origin-anchored dyadic grid makes width doublings commute with
    /// insertion order, so any arrival order of the same sample set must
    /// produce bit-identical joint counts and MI.
    #[test]
    fn streaming_mi_is_exactly_permutation_invariant(
        pairs in prop::collection::vec((-100.0f64..100.0, -1.0f64..1.0), 50..400),
    ) {
        let mut forward = StreamingMi::new(16);
        for &(x, n) in &pairs {
            forward.push(x, 0.8 * x + 20.0 * n);
        }
        let mut backward = StreamingMi::new(16);
        for &(x, n) in pairs.iter().rev() {
            backward.push(x, 0.8 * x + 20.0 * n);
        }
        // Strided replay: a third, interleaved order.
        let mut strided = StreamingMi::new(16);
        let stride = 7;
        for offset in 0..stride {
            for &(x, n) in pairs.iter().skip(offset).step_by(stride) {
                strided.push(x, 0.8 * x + 20.0 * n);
            }
        }
        prop_assert_eq!(forward.joint_counts(), backward.joint_counts());
        prop_assert_eq!(forward.joint_counts(), strided.joint_counts());
        prop_assert_eq!(forward.mi_nats().to_bits(), backward.mi_nats().to_bits());
        prop_assert_eq!(forward.mi_nats().to_bits(), strided.mi_nats().to_bits());
    }

    /// On the same sample set the streaming estimator agrees with the
    /// batch histogram estimator (run at the streaming grid's effective
    /// resolution) within a tolerance that covers their different bin
    /// anchoring — the fixed-memory grid gives up nothing material.
    #[test]
    fn streaming_mi_tracks_the_batch_estimator(
        pairs in prop::collection::vec((-100.0f64..100.0, -1.0f64..1.0), 500..800),
    ) {
        let xs: Vec<f64> = pairs.iter().map(|&(x, _)| x).collect();
        let zs: Vec<f64> = pairs.iter().map(|&(x, n)| 0.8 * x + 20.0 * n).collect();
        let mut stream = StreamingMi::new(16);
        for (&x, &z) in xs.iter().zip(&zs) {
            stream.push(x, z);
        }
        let bins = stream.effective_x_bins().max(stream.effective_z_bins()).max(2);
        let batch = mi_from_samples_nats(&xs, &zs, bins).unwrap();
        let streaming = stream.mi_nats();
        prop_assert!(
            (streaming - batch).abs() <= 0.15 * batch.max(0.5),
            "streaming {} vs batch {} at {} bins",
            streaming,
            batch,
            bins
        );
    }
}

//! Bounded event tracing for debugging simulation runs.

use std::collections::VecDeque;

use crate::time::SimTime;

/// A bounded ring buffer of timestamped trace records.
///
/// Keeps the most recent `capacity` records; older ones are evicted. Useful
/// for post-mortem inspection of a simulation without unbounded memory.
///
/// # Examples
///
/// ```
/// use tempriv_sim::trace::Trace;
/// use tempriv_sim::time::SimTime;
///
/// let mut trace = Trace::with_capacity(2);
/// trace.record(SimTime::from_units(1.0), "a");
/// trace.record(SimTime::from_units(2.0), "b");
/// trace.record(SimTime::from_units(3.0), "c");
/// let kept: Vec<_> = trace.iter().map(|(_, e)| *e).collect();
/// assert_eq!(kept, vec!["b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct Trace<E> {
    records: VecDeque<(SimTime, E)>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl<E> Trace<E> {
    /// Creates a trace retaining at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace {
            records: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
            enabled: true,
        }
    }

    /// Creates a disabled trace that records nothing (zero overhead beyond
    /// the branch).
    #[must_use]
    pub fn disabled() -> Self {
        Trace {
            records: VecDeque::new(),
            capacity: 1,
            dropped: 0,
            enabled: false,
        }
    }

    /// `true` if recording is active.
    #[must_use]
    pub const fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends a record, evicting the oldest if at capacity.
    #[inline]
    pub fn record(&mut self, time: SimTime, event: E) {
        if !self.enabled {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back((time, event));
    }

    /// Iterates over retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, E)> {
        self.records.iter()
    }

    /// Number of retained records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no records are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records evicted due to capacity.
    #[must_use]
    pub const fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Maximum number of records retained before eviction starts.
    #[must_use]
    pub const fn capacity(&self) -> usize {
        self.capacity
    }

    /// Removes all retained records and resets the eviction count,
    /// returning the trace to its freshly constructed state — intended
    /// for reuse between runs.
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(u: f64) -> SimTime {
        SimTime::from_units(u)
    }

    #[test]
    fn retains_most_recent() {
        let mut tr = Trace::with_capacity(3);
        for i in 0..5 {
            tr.record(t(i as f64), i);
        }
        let kept: Vec<_> = tr.iter().map(|&(_, e)| e).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(tr.dropped(), 2);
        assert_eq!(tr.len(), 3);
    }

    #[test]
    fn disabled_records_nothing() {
        let mut tr = Trace::disabled();
        tr.record(t(1.0), ());
        assert!(tr.is_empty());
        assert!(!tr.is_enabled());
        assert_eq!(tr.dropped(), 0);
    }

    #[test]
    fn clear_resets_records_and_eviction_count() {
        let mut tr = Trace::with_capacity(2);
        for i in 0..5 {
            tr.record(t(i as f64), i);
        }
        assert_eq!(tr.dropped(), 3);
        tr.clear();
        assert!(tr.is_empty());
        assert_eq!(tr.dropped(), 0);
        // The trace is reusable after clearing.
        tr.record(t(9.0), 9);
        assert_eq!(tr.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = Trace::<()>::with_capacity(0);
    }
}

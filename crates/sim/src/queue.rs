//! Cancellable future-event queue.
//!
//! A 4-ary min-heap keyed on `(time, sequence)`. The sequence number makes
//! the ordering total: events scheduled at the same instant pop in the order
//! they were scheduled, which keeps runs deterministic. Because the order is
//! total, the pop sequence is a pure function of the push/cancel history —
//! independent of the heap arity — so this structure is drop-in
//! interchangeable with the binary-heap version it replaced.
//!
//! [`EventId`]s are the dense monotonically-increasing sequence numbers
//! themselves, so liveness bookkeeping needs no hashing: a single
//! `Vec<u64>`-backed *settled* bitmap records ids that have been delivered
//! or cancelled. Cancellation (needed by RCAD, which preempts packets whose
//! delay timers are still pending) is an O(1) bit set; cancelled entries
//! are tombstoned in place and skipped when they reach the heap top. When
//! tombstones outnumber half the heap, the heap is compacted in one O(n)
//! retain-and-heapify pass, so cancel-heavy workloads cannot grow the heap
//! unboundedly (see [`EventQueue::footprint`]).

use crate::time::SimTime;

/// Opaque handle to a scheduled event, usable to cancel it later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// The raw id value (for logging).
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

#[derive(Debug)]
struct Slot<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> Slot<E> {
    /// The heap key; `(time, seq)` is a *total* order, so the pop sequence
    /// is unique no matter how the heap arranges equal-time entries.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// Ids at or past the bitmap length are implicitly un-settled (pending).
#[derive(Debug, Default)]
struct SettledBits {
    words: Vec<u64>,
}

impl SettledBits {
    #[inline]
    fn get(&self, seq: u64) -> bool {
        self.words
            .get((seq >> 6) as usize)
            .is_some_and(|&w| (w >> (seq & 63)) & 1 == 1)
    }

    #[inline]
    fn set(&mut self, seq: u64) {
        let w = (seq >> 6) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << (seq & 63);
    }

    /// Marks every id below `n` settled (used by [`EventQueue::clear`] so
    /// stale handles keep reporting not-pending).
    fn set_all_below(&mut self, n: u64) {
        let full = (n >> 6) as usize;
        if self.words.len() < full + 1 {
            self.words.resize(full + 1, 0);
        }
        for w in &mut self.words[..full] {
            *w = !0;
        }
        let rem = n & 63;
        if rem > 0 {
            self.words[full] |= (1u64 << rem) - 1;
        }
    }
}

/// The future-event set of a discrete-event simulation.
///
/// # Examples
///
/// ```
/// use tempriv_sim::queue::EventQueue;
/// use tempriv_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_units(2.0), "later");
/// let first = q.push(SimTime::from_units(1.0), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_units(1.0), "sooner")));
/// assert!(!q.cancel(first)); // already delivered
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// 4-ary min-heap ordered by `(time, seq)`.
    heap: Vec<Slot<E>>,
    /// Bit set once an id is delivered or cancelled; heap entries whose
    /// bit is set are tombstones.
    settled: SettledBits,
    next_seq: u64,
    delivered: u64,
    /// Pending (pushed, neither delivered nor cancelled) events.
    live: usize,
    /// Cancelled entries still physically in the heap.
    tombstones: usize,
    /// Tombstone compaction passes performed over the queue's lifetime.
    compactions: u64,
    peak_live: usize,
}

/// Below this heap size, compaction is never worth the pass.
const COMPACT_FLOOR: usize = 64;

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            settled: SettledBits::default(),
            next_seq: 0,
            delivered: 0,
            live: 0,
            tombstones: 0,
            compactions: 0,
            peak_live: 0,
        }
    }

    /// Schedules `payload` at `time`; returns a handle for cancellation.
    #[inline]
    pub fn push(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live += 1;
        if self.live > self.peak_live {
            self.peak_live = self.live;
        }
        self.heap.push(Slot { time, seq, payload });
        self.sift_up(self.heap.len() - 1);
        EventId(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending (and is now guaranteed
    /// never to be delivered), `false` if it had already been delivered or
    /// cancelled. O(1): the entry stays in the heap as a tombstone until it
    /// surfaces or a compaction pass sweeps it.
    #[inline]
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq || self.settled.get(id.0) {
            return false;
        }
        self.settled.set(id.0);
        self.live -= 1;
        self.tombstones += 1;
        if self.tombstones > COMPACT_FLOOR && self.tombstones * 2 > self.heap.len() {
            self.compact();
        }
        true
    }

    /// `true` if the event is still scheduled for delivery.
    #[must_use]
    #[inline]
    pub fn is_pending(&self, id: EventId) -> bool {
        id.0 < self.next_seq && !self.settled.get(id.0)
    }

    /// Next pending event time without removing it.
    #[must_use]
    #[inline]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.purge_cancelled_top();
        self.heap.first().map(|e| e.time)
    }

    /// Removes and returns the earliest pending event.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_with_id().map(|(t, _, e)| (t, e))
    }

    /// Like [`EventQueue::pop`], but also yields the event's id.
    #[inline]
    pub fn pop_with_id(&mut self) -> Option<(SimTime, EventId, E)> {
        self.purge_cancelled_top();
        let slot = self.remove_top()?;
        self.settled.set(slot.seq);
        self.live -= 1;
        self.delivered += 1;
        Some((slot.time, EventId(slot.seq), slot.payload))
    }

    #[inline]
    fn purge_cancelled_top(&mut self) {
        while let Some(top) = self.heap.first() {
            if self.settled.get(top.seq) {
                self.tombstones -= 1;
                self.remove_top();
            } else {
                break;
            }
        }
    }

    /// Removes the heap root, restoring the heap property.
    fn remove_top(&mut self) -> Option<Slot<E>> {
        let last = self.heap.pop()?;
        if self.heap.is_empty() {
            return Some(last);
        }
        let top = std::mem::replace(&mut self.heap[0], last);
        self.sift_down(0);
        Some(top)
    }

    /// Sweeps every tombstone out of the heap in one O(n) pass (Floyd
    /// heapify), bounding the footprint of cancel-heavy workloads.
    fn compact(&mut self) {
        let settled = &self.settled;
        self.heap.retain(|slot| !settled.get(slot.seq));
        self.tombstones = 0;
        self.compactions += 1;
        for i in (0..self.heap.len() / 4 + 1).rev() {
            self.sift_down(i);
        }
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.heap[i].key() < self.heap[parent].key() {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        loop {
            let first_child = 4 * i + 1;
            if first_child >= len {
                return;
            }
            let mut min = first_child;
            let mut min_key = self.heap[min].key();
            let last_child = (first_child + 3).min(len - 1);
            for c in first_child + 1..=last_child {
                let key = self.heap[c].key();
                if key < min_key {
                    min = c;
                    min_key = key;
                }
            }
            if min_key < self.heap[i].key() {
                self.heap.swap(i, min);
                i = min;
            } else {
                return;
            }
        }
    }

    /// Number of events still pending (excluding cancelled ones).
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total number of events delivered so far.
    #[must_use]
    pub const fn delivered(&self) -> u64 {
        self.delivered
    }

    /// High-water mark of pending events over the queue's lifetime.
    #[must_use]
    pub const fn peak_len(&self) -> usize {
        self.peak_live
    }

    /// Number of entries physically held by the heap, including
    /// not-yet-collected cancellation tombstones. Compaction keeps this
    /// below `2 × len() + 1` (plus a constant floor); tests and benchmarks
    /// assert on it to pin the tombstone-leak fix.
    #[must_use]
    pub fn footprint(&self) -> usize {
        self.heap.len()
    }

    /// Tombstone compaction passes performed so far — how often the
    /// cancel-heavy path had to sweep the heap. Deterministic: a pure
    /// function of the push/cancel history.
    #[must_use]
    pub const fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.settled.set_all_below(self.next_seq);
        self.live = 0;
        self.tombstones = 0;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(u: f64) -> SimTime {
        SimTime::from_units(u)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3.0), 3);
        q.push(t(1.0), 1);
        q.push(t(2.0), 2);
        assert_eq!(q.pop(), Some((t(1.0), 1)));
        assert_eq!(q.pop(), Some((t(2.0), 2)));
        assert_eq!(q.pop(), Some((t(3.0), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(t(1.0), "a");
        q.push(t(1.0), "b");
        q.push(t(1.0), "c");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let a = q.push(t(1.0), "a");
        q.push(t(2.0), "b");
        assert!(q.cancel(a));
        assert_eq!(q.pop(), Some((t(2.0), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_twice_returns_false() {
        let mut q = EventQueue::new();
        let a = q.push(t(1.0), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_after_delivery_returns_false() {
        let mut q = EventQueue::new();
        let a = q.push(t(1.0), ());
        q.pop();
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.push(t(1.0), ());
        q.push(t(2.0), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn is_pending_tracks_lifecycle() {
        let mut q = EventQueue::new();
        let a = q.push(t(1.0), ());
        assert!(q.is_pending(a));
        q.cancel(a);
        assert!(!q.is_pending(a));
        let b = q.push(t(2.0), ());
        q.pop();
        assert!(!q.is_pending(b));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(t(1.0), ());
        q.push(t(5.0), ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(5.0)));
    }

    #[test]
    fn delivered_counter_increments() {
        let mut q = EventQueue::new();
        q.push(t(1.0), ());
        q.push(t(2.0), ());
        q.pop();
        q.pop();
        assert_eq!(q.delivered(), 2);
    }

    #[test]
    fn pop_with_id_matches_push_id() {
        let mut q = EventQueue::new();
        let id = q.push(t(1.0), "x");
        let (time, got, payload) = q.pop_with_id().unwrap();
        assert_eq!((time, got, payload), (t(1.0), id, "x"));
    }

    #[test]
    fn clear_empties_everything() {
        let mut q = EventQueue::new();
        q.push(t(1.0), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn clear_settles_outstanding_handles() {
        let mut q = EventQueue::new();
        let a = q.push(t(1.0), ());
        let b = q.push(t(2.0), ());
        q.clear();
        assert!(!q.is_pending(a));
        assert!(!q.cancel(b), "cancelling a cleared event is a no-op");
        // The queue is still usable afterwards, with fresh ids.
        let c = q.push(t(3.0), ());
        assert!(q.is_pending(c));
        assert_eq!(q.pop(), Some((t(3.0), ())));
    }

    #[test]
    fn peak_len_tracks_high_water() {
        let mut q = EventQueue::new();
        q.push(t(1.0), ());
        let b = q.push(t(2.0), ());
        assert_eq!(q.peak_len(), 2);
        q.cancel(b);
        q.pop();
        assert_eq!(q.len(), 0);
        assert_eq!(q.peak_len(), 2);
        q.push(t(3.0), ());
        assert_eq!(q.peak_len(), 2, "peak only moves on a new high");
    }

    #[test]
    fn stress_interleaved_push_pop_cancel() {
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for i in 0..1000u64 {
            ids.push(q.push(t((i % 97) as f64), i));
        }
        let mut cancelled = 0;
        for id in ids.iter().step_by(3) {
            assert!(q.cancel(*id));
            cancelled += 1;
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((time, _)) = q.pop() {
            assert!(time >= last);
            last = time;
            n += 1;
        }
        assert_eq!(n, 1000 - cancelled);
    }

    #[test]
    fn cancel_heavy_workload_keeps_footprint_bounded() {
        // Regression test for the tombstone leak: cancelled entries that
        // never surfaced used to be retained forever. Schedule 100k
        // far-future events, cancel them all while a small working set
        // churns, and assert the physical heap stays bounded by the live
        // count rather than the cancellation count.
        let mut q = EventQueue::new();
        let keep = q.push(t(1e9), 0u64);
        let mut doomed = Vec::with_capacity(100_000);
        for i in 0..100_000u64 {
            doomed.push(q.push(t(2e9 + i as f64), i));
        }
        for id in doomed {
            assert!(q.cancel(id));
        }
        assert_eq!(q.len(), 1);
        assert!(
            q.footprint() <= 2 * q.len() + COMPACT_FLOOR + 1,
            "footprint {} not bounded after 100k cancellations",
            q.footprint()
        );
        // The survivor is still deliverable and ordering still holds.
        let mut later = Vec::new();
        for i in 0..10u64 {
            later.push(q.push(t(10.0 + i as f64), 100 + i));
        }
        let (_, id, first) = q.pop_with_id().unwrap();
        assert_eq!((id, first), (later[0], 100));
        assert!(q.is_pending(keep));
    }

    #[test]
    fn compaction_counter_tracks_sweeps() {
        let mut q = EventQueue::new();
        assert_eq!(q.compactions(), 0);
        let ids: Vec<_> = (0..1000u64).map(|i| q.push(t(1e6 + i as f64), i)).collect();
        for id in ids {
            q.cancel(id);
        }
        assert!(q.compactions() > 0, "mass cancellation must compact");
        // Delivering events never compacts.
        let before = q.compactions();
        q.push(t(1.0), 0);
        q.pop();
        assert_eq!(q.compactions(), before);
    }

    #[test]
    fn compaction_preserves_pop_order() {
        // Interleave pushes and mass cancellations so several compaction
        // passes fire, then check the survivors pop in exact (time, seq)
        // order against a sorted reference.
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        let mut ids = Vec::new();
        for round in 0..10u64 {
            for i in 0..200u64 {
                let time = t(((i * 31 + round * 17) % 101) as f64);
                let id = q.push(time, (round, i));
                ids.push((id, time, (round, i)));
            }
            // Cancel every other event pushed so far that is still live.
            for (j, (id, ..)) in ids.iter().enumerate() {
                if j % 2 == round as usize % 2 {
                    q.cancel(*id);
                }
            }
        }
        for (id, time, payload) in &ids {
            if q.is_pending(*id) {
                expect.push((*time, id.as_u64(), *payload));
            }
        }
        expect.sort_by_key(|&(time, seq, _)| (time, seq));
        let mut got = Vec::new();
        while let Some((time, id, payload)) = q.pop_with_id() {
            got.push((time, id.as_u64(), payload));
        }
        assert_eq!(got, expect);
    }
}

//! Cancellable future-event queue.
//!
//! A binary min-heap keyed on `(time, sequence)`. The sequence number makes
//! the ordering total: events scheduled at the same instant pop in the order
//! they were scheduled, which keeps runs deterministic.
//!
//! Cancellation (needed by RCAD, which preempts packets whose delay timers
//! are still pending) is lazy: cancelled [`EventId`]s are tombstoned and
//! skipped when they reach the heap top, giving cheap cancel without a
//! secondary index into the heap.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Opaque handle to a scheduled event, usable to cancel it later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// The raw id value (for logging).
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The future-event set of a discrete-event simulation.
///
/// # Examples
///
/// ```
/// use tempriv_sim::queue::EventQueue;
/// use tempriv_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_units(2.0), "later");
/// let first = q.push(SimTime::from_units(1.0), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_units(1.0), "sooner")));
/// assert!(!q.cancel(first)); // already delivered
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Ids currently pending (in the heap and not cancelled).
    live: HashSet<EventId>,
    /// Ids cancelled but not yet physically removed from the heap.
    cancelled: HashSet<EventId>,
    next_seq: u64,
    delivered: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            delivered: 0,
        }
    }

    /// Schedules `payload` at `time`; returns a handle for cancellation.
    pub fn push(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = EventId(seq);
        self.live.insert(id);
        self.heap.push(Entry {
            time,
            seq,
            id,
            payload,
        });
        id
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending (and is now guaranteed
    /// never to be delivered), `false` if it had already been delivered or
    /// cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.live.remove(&id) {
            self.cancelled.insert(id);
            true
        } else {
            false
        }
    }

    /// `true` if the event is still scheduled for delivery.
    #[must_use]
    pub fn is_pending(&self, id: EventId) -> bool {
        self.live.contains(&id)
    }

    /// Next pending event time without removing it.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.purge_cancelled_top();
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_with_id().map(|(t, _, e)| (t, e))
    }

    /// Like [`EventQueue::pop`], but also yields the event's id.
    pub fn pop_with_id(&mut self) -> Option<(SimTime, EventId, E)> {
        self.purge_cancelled_top();
        let entry = self.heap.pop()?;
        self.live.remove(&entry.id);
        self.delivered += 1;
        Some((entry.time, entry.id, entry.payload))
    }

    fn purge_cancelled_top(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.id) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }

    /// Number of events still pending (excluding cancelled ones).
    #[must_use]
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Total number of events delivered so far.
    #[must_use]
    pub const fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.live.clear();
        self.cancelled.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(u: f64) -> SimTime {
        SimTime::from_units(u)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3.0), 3);
        q.push(t(1.0), 1);
        q.push(t(2.0), 2);
        assert_eq!(q.pop(), Some((t(1.0), 1)));
        assert_eq!(q.pop(), Some((t(2.0), 2)));
        assert_eq!(q.pop(), Some((t(3.0), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(t(1.0), "a");
        q.push(t(1.0), "b");
        q.push(t(1.0), "c");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let a = q.push(t(1.0), "a");
        q.push(t(2.0), "b");
        assert!(q.cancel(a));
        assert_eq!(q.pop(), Some((t(2.0), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_twice_returns_false() {
        let mut q = EventQueue::new();
        let a = q.push(t(1.0), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_after_delivery_returns_false() {
        let mut q = EventQueue::new();
        let a = q.push(t(1.0), ());
        q.pop();
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.push(t(1.0), ());
        q.push(t(2.0), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn is_pending_tracks_lifecycle() {
        let mut q = EventQueue::new();
        let a = q.push(t(1.0), ());
        assert!(q.is_pending(a));
        q.cancel(a);
        assert!(!q.is_pending(a));
        let b = q.push(t(2.0), ());
        q.pop();
        assert!(!q.is_pending(b));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(t(1.0), ());
        q.push(t(5.0), ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(5.0)));
    }

    #[test]
    fn delivered_counter_increments() {
        let mut q = EventQueue::new();
        q.push(t(1.0), ());
        q.push(t(2.0), ());
        q.pop();
        q.pop();
        assert_eq!(q.delivered(), 2);
    }

    #[test]
    fn pop_with_id_matches_push_id() {
        let mut q = EventQueue::new();
        let id = q.push(t(1.0), "x");
        let (time, got, payload) = q.pop_with_id().unwrap();
        assert_eq!((time, got, payload), (t(1.0), id, "x"));
    }

    #[test]
    fn clear_empties_everything() {
        let mut q = EventQueue::new();
        q.push(t(1.0), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn stress_interleaved_push_pop_cancel() {
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for i in 0..1000u64 {
            ids.push(q.push(t((i % 97) as f64), i));
        }
        let mut cancelled = 0;
        for id in ids.iter().step_by(3) {
            assert!(q.cancel(*id));
            cancelled += 1;
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((time, _)) = q.pop() {
            assert!(time >= last);
            last = time;
            n += 1;
        }
        assert_eq!(n, 1000 - cancelled);
    }
}

//! # tempriv-sim — deterministic discrete-event simulation kernel
//!
//! The simulation substrate for the reproduction of *Temporal Privacy in
//! Wireless Sensor Networks* (ICDCS 2007). The paper evaluates its RCAD
//! buffering scheme with a detailed event-driven simulator; this crate
//! provides that simulator's kernel:
//!
//! * [`time`] — fixed-point [`time::SimTime`] (exact ordering, bit-for-bit
//!   reproducible runs),
//! * [`queue`] — a cancellable future-event set (RCAD preemption cancels
//!   pending delay timers),
//! * [`engine`] — the event loop with horizons, budgets, and a borrowing
//!   [`engine::Scheduler`] handed to handlers,
//! * [`rng`] — a master-seeded [`rng::RngFactory`] deriving independent
//!   per-component streams,
//! * [`stats`] — single-pass measurement accumulators (Welford, MSE,
//!   time-weighted occupancy, histograms),
//! * [`trace`] — bounded debugging traces.
//!
//! # Examples
//!
//! A minimal M/M/∞-style station: Poisson arrivals, exponential holding, and
//! a time-weighted occupancy measurement (the setup of the paper's §4):
//!
//! ```
//! use tempriv_sim::engine::Engine;
//! use tempriv_sim::rng::RngFactory;
//! use tempriv_sim::stats::TimeWeighted;
//! use tempriv_sim::time::{SimDuration, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev { Arrive, Depart }
//!
//! let factory = RngFactory::new(1);
//! let mut arrivals = factory.stream(0);
//! let mut services = factory.stream(1);
//! let mut engine = Engine::new();
//! engine.horizon(SimTime::from_units(10_000.0));
//! engine.schedule_at(SimTime::ZERO, Ev::Arrive).unwrap();
//!
//! let (lambda, mu) = (1.0, 0.5);
//! let mut in_system = 0.0;
//! let mut occupancy = TimeWeighted::new(SimTime::ZERO, 0.0);
//! engine.run(|sched, ev| match ev {
//!     Ev::Arrive => {
//!         in_system += 1.0;
//!         occupancy.update(sched.now(), in_system);
//!         let next = SimDuration::from_units(arrivals.sample_exp(1.0 / lambda));
//!         sched.schedule_in(next, Ev::Arrive);
//!         let hold = SimDuration::from_units(services.sample_exp(1.0 / mu));
//!         sched.schedule_in(hold, Ev::Depart);
//!     }
//!     Ev::Depart => {
//!         in_system -= 1.0;
//!         occupancy.update(sched.now(), in_system);
//!     }
//! });
//! // E[N] = lambda / mu = 2 for M/M/inf.
//! let avg = occupancy.average(engine.now());
//! assert!((avg - 2.0).abs() < 0.2, "measured {avg}");
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod engine;
pub mod error;
pub mod profile;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{Engine, Scheduler, StopReason};
pub use error::{SimError, SimResult};
pub use profile::{NoopPhaseTimer, Phase, PhaseTimer, PHASE_COUNT};
pub use queue::{EventId, EventQueue};
pub use rng::{RngFactory, SimRng};
pub use time::{SimDuration, SimTime};

//! Fixed-point simulation time.
//!
//! The paper's simulator measures everything in abstract "time units" (the
//! per-hop transmission delay is 1 time unit, the mean buffering delay is 30
//! time units, ...). Floating-point event times make discrete-event
//! simulations non-deterministic under reordering, so we represent time as a
//! 64-bit count of *ticks* with [`TICKS_PER_UNIT`] ticks per paper time unit.
//! At 10⁶ ticks per unit this gives microsecond-like resolution over ~5.8
//! million years of simulated time — far beyond anything the experiments
//! need, while keeping `Ord` exact.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of ticks in one simulated time unit.
pub const TICKS_PER_UNIT: u64 = 1_000_000;

/// An absolute instant on the simulation clock.
///
/// `SimTime` is a monotone, totally ordered fixed-point value. Construct it
/// from paper time units with [`SimTime::from_units`] or from raw ticks with
/// [`SimTime::from_ticks`].
///
/// # Examples
///
/// ```
/// use tempriv_sim::time::{SimTime, SimDuration};
///
/// let t = SimTime::from_units(2.5) + SimDuration::from_units(0.5);
/// assert_eq!(t.as_units(), 3.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

/// A non-negative span between two [`SimTime`] instants.
///
/// # Examples
///
/// ```
/// use tempriv_sim::time::SimDuration;
///
/// let d = SimDuration::from_units(30.0);
/// assert_eq!(d * 2, SimDuration::from_units(60.0));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw ticks.
    #[must_use]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Creates an instant from fractional paper time units.
    ///
    /// # Panics
    ///
    /// Panics if `units` is negative, NaN, or too large to represent.
    #[must_use]
    pub fn from_units(units: f64) -> Self {
        SimTime(units_to_ticks(units))
    }

    /// Raw tick count since the epoch.
    #[must_use]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional paper time units.
    #[must_use]
    pub fn as_units(self) -> f64 {
        self.0 as f64 / TICKS_PER_UNIT as f64
    }

    /// Span from `earlier` to `self`, or `None` if `earlier` is later.
    #[must_use]
    pub fn checked_duration_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Span from `earlier` to `self`, clamped at zero.
    #[must_use]
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// `self + d`, or `None` on overflow.
    #[must_use]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// `self + d`, clamped at [`SimTime::MAX`].
    #[must_use]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw ticks.
    #[must_use]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Creates a span from fractional paper time units.
    ///
    /// # Panics
    ///
    /// Panics if `units` is negative, NaN, or too large to represent.
    #[must_use]
    pub fn from_units(units: f64) -> Self {
        SimDuration(units_to_ticks(units))
    }

    /// Raw tick count.
    #[must_use]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// This span expressed in fractional paper time units.
    #[must_use]
    pub fn as_units(self) -> f64 {
        self.0 as f64 / TICKS_PER_UNIT as f64
    }

    /// `true` if this span is zero ticks long.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `self + other`, clamped at [`SimDuration::MAX`].
    #[must_use]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

fn units_to_ticks(units: f64) -> u64 {
    assert!(
        units.is_finite() && units >= 0.0,
        "time units must be finite and non-negative, got {units}"
    );
    let ticks = units * TICKS_PER_UNIT as f64;
    assert!(
        ticks <= u64::MAX as f64,
        "time value {units} units overflows the simulation clock"
    );
    ticks.round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("simulation clock overflow"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("simulation time underflow"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("negative duration between simulation instants"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl core::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl core::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}", self.as_units())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}u", self.as_units())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_round_trip() {
        let t = SimTime::from_units(30.0);
        assert_eq!(t.ticks(), 30 * TICKS_PER_UNIT);
        assert_eq!(t.as_units(), 30.0);
    }

    #[test]
    fn fractional_units_round_to_nearest_tick() {
        let d = SimDuration::from_units(1.000_000_4);
        assert_eq!(d.ticks(), TICKS_PER_UNIT);
        let d = SimDuration::from_units(1.000_000_6);
        assert_eq!(d.ticks(), TICKS_PER_UNIT + 1);
    }

    #[test]
    fn arithmetic_is_exact() {
        let t = SimTime::from_units(2.0) + SimDuration::from_units(0.5);
        assert_eq!(t, SimTime::from_units(2.5));
        assert_eq!(t - SimTime::from_units(1.0), SimDuration::from_units(1.5));
    }

    #[test]
    fn ordering_follows_ticks() {
        assert!(SimTime::from_units(1.0) < SimTime::from_units(1.000001));
        assert!(SimTime::ZERO < SimTime::MAX);
    }

    #[test]
    fn checked_duration_since_none_when_earlier() {
        let a = SimTime::from_units(1.0);
        let b = SimTime::from_units(2.0);
        assert_eq!(a.checked_duration_since(b), None);
        assert_eq!(
            b.checked_duration_since(a),
            Some(SimDuration::from_units(1.0))
        );
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_units_panic() {
        let _ = SimTime::from_units(-1.0);
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn backwards_subtraction_panics() {
        let _ = SimTime::from_units(1.0) - SimTime::from_units(2.0);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(|i| SimDuration::from_units(i as f64)).sum();
        assert_eq!(total, SimDuration::from_units(10.0));
    }

    #[test]
    fn display_formats_units() {
        assert_eq!(SimTime::from_units(1.5).to_string(), "t=1.500000");
        assert_eq!(SimDuration::from_units(0.25).to_string(), "0.250000u");
    }

    #[test]
    fn mul_scales_duration() {
        assert_eq!(
            SimDuration::from_units(3.0) * 4,
            SimDuration::from_units(12.0)
        );
    }
}

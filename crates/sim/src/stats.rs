//! Online statistics for simulation measurements.
//!
//! Everything here is single-pass and allocation-light so it can run inside
//! the event loop: Welford summaries for latency and estimation error,
//! time-weighted averages for buffer occupancy, fixed-bin histograms for
//! distributions, and an exact discrete counter for occupancy PMFs.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use tempriv_sim::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN (a NaN observation would silently poison every
    /// downstream metric).
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot record NaN");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by n); 0 if empty.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by n − 1); 0 if fewer than two samples.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation; `None` if empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }
}

/// Mean-square accumulator for estimation error: records raw errors
/// `x̂ − x` and reports MSE, bias, and RMSE — the paper's privacy metric
/// (§2.1: `MSE = Σ (x̂_i − x_i)² / m`).
///
/// # Examples
///
/// ```
/// use tempriv_sim::stats::MseAccumulator;
///
/// let mut mse = MseAccumulator::new();
/// mse.record_error(3.0);
/// mse.record_error(-1.0);
/// assert_eq!(mse.mse(), 5.0); // (9 + 1) / 2
/// assert_eq!(mse.bias(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MseAccumulator {
    errors: OnlineStats,
    sum_sq: f64,
}

impl MseAccumulator {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        MseAccumulator::default()
    }

    /// Records one estimation error `x̂ − x`.
    pub fn record_error(&mut self, error: f64) {
        self.errors.record(error);
        self.sum_sq += error * error;
    }

    /// Records an (estimate, truth) pair.
    pub fn record_pair(&mut self, estimate: f64, truth: f64) {
        self.record_error(estimate - truth);
    }

    /// Mean square error; 0 if empty.
    #[must_use]
    pub fn mse(&self) -> f64 {
        if self.errors.count() == 0 {
            0.0
        } else {
            self.sum_sq / self.errors.count() as f64
        }
    }

    /// Root mean square error.
    #[must_use]
    pub fn rmse(&self) -> f64 {
        self.mse().sqrt()
    }

    /// Mean error (systematic bias of the estimator).
    #[must_use]
    pub fn bias(&self) -> f64 {
        self.errors.mean()
    }

    /// Number of recorded errors.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.errors.count()
    }

    /// Variance of the error around its bias.
    #[must_use]
    pub fn error_variance(&self) -> f64 {
        self.errors.population_variance()
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &MseAccumulator) {
        self.errors.merge(&other.errors);
        self.sum_sq += other.sum_sq;
    }
}

/// Time-weighted average of a piecewise-constant signal, e.g. buffer
/// occupancy over simulated time.
///
/// # Examples
///
/// ```
/// use tempriv_sim::stats::TimeWeighted;
/// use tempriv_sim::time::SimTime;
///
/// let mut occ = TimeWeighted::new(SimTime::ZERO, 0.0);
/// occ.update(SimTime::from_units(10.0), 2.0); // was 0 for 10 units
/// occ.update(SimTime::from_units(20.0), 0.0); // was 2 for 10 units
/// assert_eq!(occ.average(SimTime::from_units(20.0)), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeWeighted {
    start: SimTime,
    last_time: SimTime,
    last_value: f64,
    integral: f64,
    peak: f64,
}

impl TimeWeighted {
    /// Starts tracking at `start` with initial value `value`.
    #[must_use]
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            start,
            last_time: start,
            last_value: value,
            integral: 0.0,
            peak: value,
        }
    }

    /// Records that the signal changed to `value` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous update.
    pub fn update(&mut self, now: SimTime, value: f64) {
        let dt = now
            .checked_duration_since(self.last_time)
            .expect("TimeWeighted updates must be in time order");
        self.integral += self.last_value * dt.as_units();
        self.last_time = now;
        self.last_value = value;
        self.peak = self.peak.max(value);
    }

    /// Time-weighted mean over `[start, now]`; 0 over an empty interval.
    #[must_use]
    pub fn average(&self, now: SimTime) -> f64 {
        let mut integral = self.integral;
        if let Some(dt) = now.checked_duration_since(self.last_time) {
            integral += self.last_value * dt.as_units();
        }
        let span = now.saturating_duration_since(self.start).as_units();
        if span == 0.0 {
            0.0
        } else {
            integral / span
        }
    }

    /// Largest value seen.
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Current value of the signal.
    #[must_use]
    pub fn current(&self) -> f64 {
        self.last_value
    }
}

/// Exact empirical PMF over non-negative integers (e.g. "buffer holds k
/// packets"), weighted by the simulated time spent in each state. Used to
/// compare against the Poisson occupancy law of §4.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StateDwell {
    /// Dwell for states `0..64` — the per-event hot path for buffer
    /// occupancies, which rarely exceed a few tens. A state is "present"
    /// (even with zero accumulated dwell, e.g. two transitions at the
    /// same instant) iff its bit in `visited` is set, mirroring the
    /// entry-creation semantics of the map path.
    small: Vec<f64>,
    /// Bitmap of small states ever exited or observed.
    visited: u64,
    /// Overflow dwell for states `>= 64`.
    dwell: BTreeMap<u64, f64>,
    last_time: Option<SimTime>,
    state: u64,
}

/// States below this bound take the allocation-free `small` path.
const SMALL_STATES: u64 = 64;

impl StateDwell {
    /// Starts tracking at `start` in state `state`.
    #[must_use]
    pub fn new(start: SimTime, state: u64) -> Self {
        StateDwell {
            small: Vec::new(),
            visited: 0,
            dwell: BTreeMap::new(),
            last_time: Some(start),
            state,
        }
    }

    /// Adds `dt` dwell to `state`, marking it visited.
    #[inline]
    fn accumulate(&mut self, state: u64, dt: f64) {
        if state < SMALL_STATES {
            let idx = state as usize;
            if idx >= self.small.len() {
                self.small.resize(idx + 1, 0.0);
            }
            self.small[idx] += dt;
            self.visited |= 1 << state;
        } else {
            *self.dwell.entry(state).or_insert(0.0) += dt;
        }
    }

    /// Records a transition to `state` at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous transition.
    pub fn transition(&mut self, now: SimTime, state: u64) {
        let last = self.last_time.expect("StateDwell not initialized");
        let dt = now
            .checked_duration_since(last)
            .expect("StateDwell transitions must be in time order")
            .as_units();
        let prev = self.state;
        self.accumulate(prev, dt);
        self.last_time = Some(now);
        self.state = state;
    }

    /// Closes the observation window at `now` and returns the normalized
    /// PMF as `(state, probability)` pairs in state order.
    #[must_use]
    pub fn pmf(&self, now: SimTime) -> Vec<(u64, f64)> {
        let mut closed = self.clone();
        if let Some(last) = self.last_time {
            if let Some(dt) = now.checked_duration_since(last) {
                closed.accumulate(self.state, dt.as_units());
            }
        }
        let small_total: f64 = closed
            .small
            .iter()
            .enumerate()
            .filter(|&(k, _)| closed.visited & (1 << k) != 0)
            .map(|(_, w)| w)
            .sum();
        let total: f64 = small_total + closed.dwell.values().sum::<f64>();
        if total == 0.0 {
            return Vec::new();
        }
        closed
            .small
            .iter()
            .enumerate()
            .filter(|&(k, _)| closed.visited & (1 << k) != 0)
            .map(|(k, &w)| (k as u64, w / total))
            .chain(closed.dwell.iter().map(|(&k, &w)| (k, w / total)))
            .collect()
    }

    /// Time-weighted mean state.
    #[must_use]
    pub fn mean(&self, now: SimTime) -> f64 {
        self.pmf(now).into_iter().map(|(k, p)| k as f64 * p).sum()
    }

    /// Current state.
    #[must_use]
    pub fn current(&self) -> u64 {
        self.state
    }
}

/// Sample mean with a 95% normal-approximation confidence half-width:
/// `(mean, 1.96·s/√n)`. With fewer than two samples the half-width is
/// infinite (nothing can be said about spread).
///
/// # Panics
///
/// Panics if `samples` is empty or contains NaN.
///
/// # Examples
///
/// ```
/// use tempriv_sim::stats::mean_ci95;
///
/// let (mean, half) = mean_ci95(&[10.0, 12.0, 8.0, 11.0, 9.0]);
/// assert_eq!(mean, 10.0);
/// assert!(half > 0.0 && half < 3.0);
/// ```
#[must_use]
pub fn mean_ci95(samples: &[f64]) -> (f64, f64) {
    assert!(!samples.is_empty(), "need at least one sample");
    let mut stats = OnlineStats::new();
    for &x in samples {
        stats.record(x);
    }
    let n = stats.count() as f64;
    let half = if stats.count() < 2 {
        f64::INFINITY
    } else {
        1.96 * (stats.sample_variance() / n).sqrt()
    };
    (stats.mean(), half)
}

/// Fixed-bin histogram over `[lo, hi)` with overflow/underflow buckets.
///
/// # Examples
///
/// ```
/// use tempriv_sim::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// for x in [0.5, 1.5, 1.7, 9.9, 12.0] {
///     h.record(x);
/// }
/// assert_eq!(h.bin_count(1), 2);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`, the bounds are not finite, or `bins == 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid histogram range [{lo}, {hi})"
        );
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Number of bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Center of bin `i`.
    #[must_use]
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = self.bin_width();
        self.lo + (i as f64 + 0.5) * w
    }

    /// Width of each bin.
    #[must_use]
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Observations below the range.
    #[must_use]
    pub const fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range end.
    #[must_use]
    pub const fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations, including out-of-range ones.
    #[must_use]
    pub const fn total(&self) -> u64 {
        self.total
    }

    /// In-range probability density per bin: count / (total · width).
    #[must_use]
    pub fn densities(&self) -> Vec<f64> {
        let norm = self.total as f64 * self.bin_width();
        self.counts
            .iter()
            .map(|&c| if norm == 0.0 { 0.0 } else { c as f64 / norm })
            .collect()
    }

    /// Approximate quantile (linear in the bin), `q` in `[0, 1]`.
    ///
    /// Out-of-range mass is counted at the range ends. Returns `None` if
    /// the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return None;
        }
        let target = q * self.total as f64;
        let mut cum = self.underflow as f64;
        if cum >= target {
            return Some(self.lo);
        }
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cum + c as f64;
            if next >= target && c > 0 {
                let frac = (target - cum) / c as f64;
                return Some(self.lo + (i as f64 + frac) * self.bin_width());
            }
            cum = next;
        }
        Some(self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(u: f64) -> SimTime {
        SimTime::from_units(u)
    }

    #[test]
    fn welford_basic_moments() {
        let mut s = OnlineStats::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
        assert!((s.population_variance() - 1.25).abs() < 1e-12);
        assert!((s.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
        assert_eq!(s.sum(), 10.0);
    }

    #[test]
    fn welford_empty_defaults() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.population_variance() - all.population_variance()).abs() < 1e-10);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = OnlineStats::new();
        a.record(5.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.mean(), 5.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn welford_rejects_nan() {
        OnlineStats::new().record(f64::NAN);
    }

    #[test]
    fn mse_matches_definition() {
        let mut m = MseAccumulator::new();
        m.record_pair(10.0, 7.0); // error 3
        m.record_pair(5.0, 6.0); // error -1
        assert_eq!(m.count(), 2);
        assert_eq!(m.mse(), 5.0);
        assert!((m.rmse() - 5.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(m.bias(), 1.0);
        // MSE = bias^2 + variance decomposition
        assert!((m.mse() - (m.bias().powi(2) + m.error_variance())).abs() < 1e-12);
    }

    #[test]
    fn mse_merge() {
        let mut a = MseAccumulator::new();
        a.record_error(2.0);
        let mut b = MseAccumulator::new();
        b.record_error(-2.0);
        a.merge(&b);
        assert_eq!(a.mse(), 4.0);
        assert_eq!(a.bias(), 0.0);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(t(0.0), 1.0);
        tw.update(t(4.0), 3.0);
        // value 1 for 4 units, then 3 for 6 units => (4 + 18) / 10
        assert!((tw.average(t(10.0)) - 2.2).abs() < 1e-12);
        assert_eq!(tw.peak(), 3.0);
        assert_eq!(tw.current(), 3.0);
    }

    #[test]
    fn time_weighted_empty_interval() {
        let tw = TimeWeighted::new(t(5.0), 7.0);
        assert_eq!(tw.average(t(5.0)), 0.0);
    }

    #[test]
    fn state_dwell_pmf_normalizes() {
        let mut sd = StateDwell::new(t(0.0), 0);
        sd.transition(t(2.0), 1); // state 0 for 2u
        sd.transition(t(5.0), 0); // state 1 for 3u
        sd.transition(t(10.0), 2); // state 0 for 5u
        let pmf = sd.pmf(t(10.0));
        let lookup: BTreeMap<u64, f64> = pmf.into_iter().collect();
        assert!((lookup[&0] - 0.7).abs() < 1e-12);
        assert!((lookup[&1] - 0.3).abs() < 1e-12);
        assert!((sd.mean(t(10.0)) - 0.3).abs() < 1e-12);
        assert_eq!(sd.current(), 2);
    }

    #[test]
    fn state_dwell_includes_open_interval() {
        let mut sd = StateDwell::new(t(0.0), 3);
        sd.transition(t(1.0), 5);
        let pmf = sd.pmf(t(2.0));
        let lookup: BTreeMap<u64, f64> = pmf.into_iter().collect();
        assert!((lookup[&3] - 0.5).abs() < 1e-12);
        assert!((lookup[&5] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn state_dwell_keeps_zero_dwell_states_and_overflow() {
        // Two transitions at the same instant: the exited state must
        // appear in the PMF with probability 0, exactly as the map
        // entry-creation semantics had it (peak occupancy depends on it).
        let mut sd = StateDwell::new(t(0.0), 0);
        sd.transition(t(2.0), 10);
        sd.transition(t(2.0), 0); // state 10 for 0u
        let pmf = sd.pmf(t(4.0));
        assert_eq!(pmf, vec![(0, 1.0), (10, 0.0)]);
        assert_eq!(pmf.iter().map(|&(k, _)| k).max(), Some(10));

        // States past the small fast path land in the overflow map and
        // still come back sorted.
        let mut big = StateDwell::new(t(0.0), 100);
        big.transition(t(1.0), 2);
        let pmf = big.pmf(t(2.0));
        assert_eq!(pmf, vec![(2, 0.5), (100, 0.5)]);
    }

    #[test]
    fn ci_shrinks_with_sample_size() {
        let small: Vec<f64> = (0..10).map(|i| (i % 5) as f64).collect();
        let large: Vec<f64> = (0..1000).map(|i| (i % 5) as f64).collect();
        let (_, h_small) = mean_ci95(&small);
        let (_, h_large) = mean_ci95(&large);
        assert!(h_large < h_small / 5.0);
        let (_, h_one) = mean_ci95(&[3.0]);
        assert!(h_one.is_infinite());
    }

    #[test]
    fn histogram_bins_and_ranges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 1.9, 2.0, 9.999, 10.0, 42.0] {
            h.record(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bin_count(0), 2); // 0.0 and 1.9
        assert_eq!(h.bin_count(1), 1); // 2.0
        assert_eq!(h.bin_count(4), 1); // 9.999
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin_width(), 2.0);
        assert_eq!(h.bin_center(0), 1.0);
    }

    #[test]
    fn histogram_densities_integrate_to_in_range_mass() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for i in 0..100 {
            h.record(i as f64 / 100.0);
        }
        let sum: f64 = h.densities().iter().map(|d| d * h.bin_width()).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..1000 {
            h.record((i % 100) as f64);
        }
        let med = h.quantile(0.5).unwrap();
        assert!((med - 50.0).abs() < 2.0, "median {med}");
        assert_eq!(Histogram::new(0.0, 1.0, 1).quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn time_weighted_rejects_backwards_updates() {
        let mut tw = TimeWeighted::new(t(5.0), 0.0);
        tw.update(t(1.0), 1.0);
    }
}

//! Seeded, stream-split random number generation.
//!
//! Every stochastic component of the simulator (each node's delay sampler,
//! each traffic source, ...) draws from its own *stream*, derived
//! deterministically from a single master seed. This makes whole-network
//! runs bit-for-bit reproducible and keeps streams statistically independent
//! regardless of the order in which components consume randomness.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Derives independent RNG streams from one master seed.
///
/// Streams are identified by a `u64` id; the (seed, id) pair is mixed with
/// SplitMix64 so that nearby ids yield unrelated streams.
///
/// # Examples
///
/// ```
/// use rand::RngCore;
/// use tempriv_sim::rng::RngFactory;
///
/// let factory = RngFactory::new(42);
/// let mut a = factory.stream(0);
/// let mut b = factory.stream(1);
/// // Identical construction is reproducible...
/// assert_eq!(a.next_u64(), factory.stream(0).next_u64());
/// // ...while distinct streams differ.
/// assert_ne!(factory.stream(0).next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RngFactory {
    master_seed: u64,
}

impl RngFactory {
    /// Creates a factory for the given master seed.
    #[must_use]
    pub const fn new(master_seed: u64) -> Self {
        RngFactory { master_seed }
    }

    /// The master seed this factory derives streams from.
    #[must_use]
    pub const fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Returns the RNG stream with the given id.
    #[must_use]
    pub fn stream(&self, stream_id: u64) -> SimRng {
        let mixed = splitmix64(self.master_seed ^ splitmix64(stream_id));
        SimRng::seed_from_u64(mixed)
    }

    /// Returns a stream identified by a (namespace, index) pair, for
    /// components that need a two-level stream id (e.g. per-node, per-role).
    #[must_use]
    pub fn substream(&self, namespace: u64, index: u64) -> SimRng {
        self.stream(splitmix64(namespace).wrapping_add(index))
    }
}

/// The simulator's RNG stream type.
///
/// A platform-independent, seedable generator (ChaCha-based [`StdRng`])
/// wrapped so that the concrete algorithm is an implementation detail.
/// Every draw is counted (see [`SimRng::draws`]) so determinism tests can
/// assert that observers — probes, tracing — never consume randomness.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    draws: u64,
}

impl SimRng {
    /// Creates a stream directly from a seed. Prefer [`RngFactory::stream`]
    /// for anything that is part of an experiment.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            draws: 0,
        }
    }

    /// How many times this stream has been advanced (one per sample or
    /// [`RngCore`] call). Purely observational; reading it never perturbs
    /// the stream.
    #[must_use]
    pub const fn draws(&self) -> u64 {
        self.draws
    }

    /// Samples an exponential random variable with the given mean.
    ///
    /// The exponential distribution is the paper's recommended delay
    /// distribution: it maximizes differential entropy among non-negative
    /// distributions with a fixed mean (§3.2).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn sample_exp(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive, got {mean}"
        );
        // Inverse-CDF sampling; 1 - u is in (0, 1] so ln is finite.
        self.draws += 1;
        let u: f64 = self.inner.gen::<f64>();
        -mean * (1.0 - u).ln()
    }

    /// Samples a uniform random variable on `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or the bounds are not finite.
    pub fn sample_uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid uniform bounds [{lo}, {hi})"
        );
        if lo == hi {
            return lo;
        }
        self.draws += 1;
        self.inner.gen_range(lo..hi)
    }

    /// Samples `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn sample_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.draws += 1;
        self.inner.gen::<f64>() < p
    }

    /// Samples an index uniformly from `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn sample_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample from an empty range");
        self.draws += 1;
        self.inner.gen_range(0..n)
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.draws += 1;
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.draws += 1;
        self.inner.fill_bytes(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.draws += 1;
        self.inner.try_fill_bytes(dest)
    }
}

/// SplitMix64 finalizer; a fast, well-distributed 64-bit mixer.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let f = RngFactory::new(7);
        let xs: Vec<u64> = (0..8).map(|_| f.stream(3).next_u64()).collect();
        assert!(xs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn distinct_streams_differ() {
        let f = RngFactory::new(7);
        assert_ne!(f.stream(0).next_u64(), f.stream(1).next_u64());
        assert_ne!(f.substream(1, 0).next_u64(), f.substream(2, 0).next_u64());
    }

    #[test]
    fn distinct_seeds_differ() {
        assert_ne!(
            RngFactory::new(1).stream(0).next_u64(),
            RngFactory::new(2).stream(0).next_u64()
        );
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = RngFactory::new(11).stream(0);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.sample_exp(30.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 30.0).abs() < 0.5, "empirical mean {mean}");
    }

    #[test]
    fn exponential_variance_is_close() {
        // Var of Exp(mean m) is m^2; a strong distributional fingerprint.
        let mut rng = RngFactory::new(13).stream(0);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.sample_exp(2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((var - 4.0).abs() < 0.15, "empirical variance {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = RngFactory::new(17).stream(0);
        for _ in 0..10_000 {
            let x = rng.sample_uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
        assert_eq!(rng.sample_uniform(3.0, 3.0), 3.0);
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = RngFactory::new(19).stream(0);
        assert!(!rng.sample_bool(0.0));
        assert!(rng.sample_bool(1.0));
    }

    #[test]
    fn index_sampling_in_range() {
        let mut rng = RngFactory::new(23).stream(0);
        for _ in 0..1000 {
            assert!(rng.sample_index(4) < 4);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exp_rejects_non_positive_mean() {
        RngFactory::new(0).stream(0).sample_exp(0.0);
    }

    #[test]
    fn draws_count_every_advance() {
        let mut rng = RngFactory::new(29).stream(0);
        assert_eq!(rng.draws(), 0);
        rng.sample_exp(5.0);
        rng.sample_uniform(0.0, 1.0);
        rng.sample_bool(0.5);
        rng.sample_index(3);
        rng.next_u64();
        assert_eq!(rng.draws(), 5);
        // A degenerate uniform consumes nothing and counts nothing.
        rng.sample_uniform(2.0, 2.0);
        assert_eq!(rng.draws(), 5);
    }

    #[test]
    fn splitmix_is_bijective_sample() {
        // Spot-check that the mixer has no trivial fixed point at zero.
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}

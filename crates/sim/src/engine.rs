//! Discrete-event simulation engine.
//!
//! [`Engine`] owns the clock and the future-event set and delivers events in
//! non-decreasing time order to a handler closure. The handler receives a
//! [`Scheduler`] view through which it can schedule and cancel further
//! events, so simulation state structs never have to fight the borrow
//! checker over the queue.

use crate::error::{SimError, SimResult};
use crate::queue::{EventId, EventQueue};
use crate::time::{SimDuration, SimTime};

/// Why [`Engine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The future-event set drained completely.
    Exhausted,
    /// The configured horizon was reached with events still pending.
    HorizonReached,
    /// The handler requested a stop via [`Scheduler::request_stop`].
    Requested,
    /// The configured event budget was spent.
    EventBudget,
}

/// Scheduling interface handed to event handlers.
///
/// Wraps the engine's queue and current time; created by the engine for the
/// duration of one event delivery.
#[derive(Debug)]
pub struct Scheduler<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    stop: &'a mut bool,
}

impl<'a, E> Scheduler<'a, E> {
    /// The time of the event being handled.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire `delay` after now.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.queue.push(self.now + delay, payload)
    }

    /// Schedules `payload` at an absolute instant.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ScheduleInPast`] if `at` is before the current
    /// simulation time.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> SimResult<EventId> {
        if at < self.now {
            return Err(SimError::ScheduleInPast { at, now: self.now });
        }
        Ok(self.queue.push(at, payload))
    }

    /// Cancels a pending event; `true` if it was still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// `true` if the event is still scheduled.
    #[must_use]
    pub fn is_pending(&self, id: EventId) -> bool {
        self.queue.is_pending(id)
    }

    /// Number of pending events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Asks the engine to stop after the current event completes.
    pub fn request_stop(&mut self) {
        *self.stop = true;
    }
}

/// A deterministic discrete-event simulation loop.
///
/// # Examples
///
/// Count ticks of a self-rescheduling timer until the horizon:
///
/// ```
/// use tempriv_sim::engine::{Engine, StopReason};
/// use tempriv_sim::time::{SimDuration, SimTime};
///
/// let mut engine = Engine::new();
/// engine.schedule_at(SimTime::ZERO, ()).unwrap();
/// let mut ticks = 0u32;
/// let reason = engine
///     .horizon(SimTime::from_units(10.0))
///     .run(|sched, ()| {
///         ticks += 1;
///         sched.schedule_in(SimDuration::from_units(1.0), ());
///     });
/// assert_eq!(reason, StopReason::HorizonReached);
/// assert_eq!(ticks, 11); // t = 0, 1, ..., 10
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    horizon: SimTime,
    event_budget: Option<u64>,
}

impl<E> Engine<E> {
    /// Creates an engine at time zero with an unbounded horizon.
    #[must_use]
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            horizon: SimTime::MAX,
            event_budget: None,
        }
    }

    /// Sets the inclusive time horizon; events after it are not delivered.
    pub fn horizon(&mut self, horizon: SimTime) -> &mut Self {
        self.horizon = horizon;
        self
    }

    /// Caps the total number of events delivered by [`Engine::run`]; a
    /// safety net against runaway self-scheduling loops.
    pub fn event_budget(&mut self, budget: u64) -> &mut Self {
        self.event_budget = Some(budget);
        self
    }

    /// Current simulation time (the time of the last delivered event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total events delivered so far.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.queue.delivered()
    }

    /// High-water mark of the future-event set over the engine's lifetime.
    #[must_use]
    pub fn peak_pending(&self) -> usize {
        self.queue.peak_len()
    }

    /// Entries physically held by the future-event heap right now,
    /// including not-yet-collected cancellation tombstones (see
    /// [`EventQueue::footprint`]).
    #[must_use]
    pub fn queue_footprint(&self) -> usize {
        self.queue.footprint()
    }

    /// Tombstone compaction passes the future-event queue has performed
    /// (see [`EventQueue::compactions`]).
    #[must_use]
    pub fn queue_compactions(&self) -> u64 {
        self.queue.compactions()
    }

    /// Schedules an event before the run starts (or between runs).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ScheduleInPast`] if `at` is before current time.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> SimResult<EventId> {
        if at < self.now {
            return Err(SimError::ScheduleInPast { at, now: self.now });
        }
        Ok(self.queue.push(at, payload))
    }

    /// Timestamp of the next pending event, if any. Ignores the horizon:
    /// this is what the queue holds, not what `run` would deliver.
    #[must_use]
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Runs until the queue drains, the horizon passes, the event budget is
    /// spent, or the handler requests a stop. Returns why it stopped.
    ///
    /// The handler is invoked once per delivered event with a [`Scheduler`]
    /// positioned at the event's timestamp.
    pub fn run<F>(&mut self, handler: F) -> StopReason
    where
        F: FnMut(&mut Scheduler<'_, E>, E),
    {
        self.run_bounded(None, handler)
    }

    /// Runs like [`Engine::run`] but delivers only events strictly before
    /// `bound`, then returns [`StopReason::HorizonReached`] with the
    /// remaining events intact. The clock is left at the last delivered
    /// event, so a later `run_before` (or `run`) call resumes seamlessly —
    /// this is the window primitive conservative parallel runners build
    /// their barriers on: everything in `[now, bound)` is safe to process
    /// when cross-partition influences cannot arrive before `bound`.
    pub fn run_before<F>(&mut self, bound: SimTime, handler: F) -> StopReason
    where
        F: FnMut(&mut Scheduler<'_, E>, E),
    {
        self.run_bounded(Some(bound), handler)
    }

    fn run_bounded<F>(&mut self, bound: Option<SimTime>, mut handler: F) -> StopReason
    where
        F: FnMut(&mut Scheduler<'_, E>, E),
    {
        let mut remaining = self.event_budget;
        loop {
            if let Some(0) = remaining {
                return StopReason::EventBudget;
            }
            let Some(next_time) = self.queue.peek_time() else {
                return StopReason::Exhausted;
            };
            if let Some(bound) = bound {
                if next_time >= bound {
                    return StopReason::HorizonReached;
                }
            }
            if next_time > self.horizon {
                return StopReason::HorizonReached;
            }
            let (time, payload) = self.queue.pop().expect("peeked event must pop");
            debug_assert!(time >= self.now, "event queue violated time order");
            self.now = time;
            let mut stop = false;
            let mut sched = Scheduler {
                now: time,
                queue: &mut self.queue,
                stop: &mut stop,
            };
            handler(&mut sched, payload);
            if let Some(r) = remaining.as_mut() {
                *r -= 1;
            }
            if stop {
                return StopReason::Requested;
            }
        }
    }

    /// Delivers at most one event; returns its time and payload, or `None`
    /// if the queue is empty or the next event lies beyond the horizon.
    pub fn step(&mut self) -> Option<(SimTime, E)> {
        let next_time = self.queue.peek_time()?;
        if next_time > self.horizon {
            return None;
        }
        let (time, payload) = self.queue.pop()?;
        self.now = time;
        Some((time, payload))
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Engine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(u: f64) -> SimTime {
        SimTime::from_units(u)
    }

    fn d(u: f64) -> SimDuration {
        SimDuration::from_units(u)
    }

    #[test]
    fn delivers_in_order_and_advances_clock() {
        let mut engine = Engine::new();
        engine.schedule_at(t(2.0), "b").unwrap();
        engine.schedule_at(t(1.0), "a").unwrap();
        let mut seen = Vec::new();
        let reason = engine.run(|sched, ev| seen.push((sched.now(), ev)));
        assert_eq!(reason, StopReason::Exhausted);
        assert_eq!(seen, vec![(t(1.0), "a"), (t(2.0), "b")]);
        assert_eq!(engine.now(), t(2.0));
    }

    #[test]
    fn horizon_stops_delivery() {
        let mut engine = Engine::new();
        engine.schedule_at(t(1.0), 1).unwrap();
        engine.schedule_at(t(100.0), 2).unwrap();
        engine.horizon(t(10.0));
        let mut seen = Vec::new();
        let reason = engine.run(|_, ev| seen.push(ev));
        assert_eq!(reason, StopReason::HorizonReached);
        assert_eq!(seen, vec![1]);
        assert_eq!(engine.pending(), 1);
    }

    #[test]
    fn handler_can_schedule_and_cancel() {
        let mut engine = Engine::new();
        engine.schedule_at(t(0.0), "seed").unwrap();
        let mut log = Vec::new();
        engine.run(|sched, ev| {
            log.push(ev);
            if ev == "seed" {
                let doomed = sched.schedule_in(d(5.0), "doomed");
                sched.schedule_in(d(1.0), "kept");
                assert!(sched.cancel(doomed));
                assert!(!sched.is_pending(doomed));
            }
        });
        assert_eq!(log, vec!["seed", "kept"]);
    }

    #[test]
    fn request_stop_halts_immediately() {
        let mut engine = Engine::new();
        for i in 0..5 {
            engine.schedule_at(t(i as f64), i).unwrap();
        }
        let mut seen = Vec::new();
        let reason = engine.run(|sched, ev| {
            seen.push(ev);
            if ev == 2 {
                sched.request_stop();
            }
        });
        assert_eq!(reason, StopReason::Requested);
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(engine.pending(), 2);
    }

    #[test]
    fn event_budget_limits_deliveries() {
        let mut engine = Engine::new();
        engine.schedule_at(t(0.0), ()).unwrap();
        engine.event_budget(10);
        let reason = engine.run(|sched, ()| {
            sched.schedule_in(d(1.0), ());
        });
        assert_eq!(reason, StopReason::EventBudget);
        assert_eq!(engine.delivered(), 10);
    }

    #[test]
    fn schedule_in_past_is_rejected() {
        let mut engine = Engine::new();
        engine.schedule_at(t(5.0), ()).unwrap();
        engine.run(|_, ()| {});
        let err = engine.schedule_at(t(1.0), ()).unwrap_err();
        assert!(matches!(err, SimError::ScheduleInPast { .. }));
    }

    #[test]
    fn scheduler_rejects_past_absolute_times() {
        let mut engine = Engine::new();
        engine.schedule_at(t(5.0), ()).unwrap();
        let mut saw_err = false;
        engine.run(|sched, ()| {
            saw_err = sched.schedule_at(t(1.0), ()).is_err();
        });
        assert!(saw_err);
    }

    #[test]
    fn step_delivers_single_events() {
        let mut engine = Engine::new();
        engine.schedule_at(t(1.0), 1).unwrap();
        engine.schedule_at(t(2.0), 2).unwrap();
        assert_eq!(engine.step(), Some((t(1.0), 1)));
        assert_eq!(engine.step(), Some((t(2.0), 2)));
        assert_eq!(engine.step(), None);
    }

    #[test]
    fn run_before_windows_compose_into_a_full_run() {
        let build = |engine: &mut Engine<u32>| {
            for i in 0..6 {
                engine.schedule_at(t(i as f64), i).unwrap();
            }
        };
        let mut whole = Engine::new();
        build(&mut whole);
        let mut all = Vec::new();
        whole.run(|sched, ev| all.push((sched.now(), ev)));

        let mut windowed = Engine::new();
        build(&mut windowed);
        let mut seen = Vec::new();
        let mut window = t(0.0);
        while let Some(next) = windowed.next_time() {
            assert!(next >= window, "windows never re-deliver the past");
            window = next + d(2.0);
            let reason = windowed.run_before(window, |sched, ev| seen.push((sched.now(), ev)));
            assert!(matches!(
                reason,
                StopReason::HorizonReached | StopReason::Exhausted
            ));
            // The bound is exclusive: nothing at or past it was delivered.
            for &(at, _) in &seen {
                assert!(at < window);
            }
        }
        assert_eq!(seen, all);
        assert_eq!(windowed.next_time(), None);
    }

    #[test]
    fn run_before_leaves_later_events_pending() {
        let mut engine = Engine::new();
        engine.schedule_at(t(1.0), 1).unwrap();
        engine.schedule_at(t(5.0), 5).unwrap();
        let mut seen = Vec::new();
        let reason = engine.run_before(t(5.0), |_, ev| seen.push(ev));
        assert_eq!(reason, StopReason::HorizonReached);
        assert_eq!(seen, vec![1], "an event exactly at the bound must wait");
        assert_eq!(engine.pending(), 1);
        assert_eq!(engine.next_time(), Some(t(5.0)));
        // Cross-window insertions land before the pending tail.
        engine.schedule_at(t(3.0), 3).unwrap();
        let reason = engine.run(|_, ev| seen.push(ev));
        assert_eq!(reason, StopReason::Exhausted);
        assert_eq!(seen, vec![1, 3, 5]);
    }

    #[test]
    fn run_resumes_after_stop() {
        let mut engine = Engine::new();
        for i in 0..4 {
            engine.schedule_at(t(i as f64), i).unwrap();
        }
        let mut first = Vec::new();
        engine.run(|sched, ev| {
            first.push(ev);
            if ev == 1 {
                sched.request_stop();
            }
        });
        let mut second = Vec::new();
        let reason = engine.run(|_, ev| second.push(ev));
        assert_eq!(first, vec![0, 1]);
        assert_eq!(second, vec![2, 3]);
        assert_eq!(reason, StopReason::Exhausted);
    }
}

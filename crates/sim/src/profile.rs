//! Phase vocabulary for engine self-profiling.
//!
//! The simulation driver attributes wall-time to coarse phases (event
//! dispatch by kind, queue pushes, victim selection, probe overhead) by
//! calling [`PhaseTimer::switch`] at phase boundaries. The kernel defines
//! only the vocabulary and the zero-cost default; recording
//! implementations live upstream (the telemetry crate's batched
//! `PhaseProfiler`). With [`NoopPhaseTimer`] every switch monomorphizes
//! to nothing, so un-profiled runs pay no cost at all.

/// Number of distinct [`Phase`] values (array-index bound).
pub const PHASE_COUNT: usize = 8;

/// A coarse wall-time attribution bucket inside the simulation driver.
///
/// `EngineLoop` is the residual: future-event-set pop/peek, scheduling
/// bookkeeping, and everything between the end of one handler region and
/// the start of the next. The remaining phases bracket the driver's
/// per-event work so the engine's own hot loop needs no instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Event-queue pop/peek and inter-handler residual time.
    EngineLoop,
    /// Handling packet-creation events (source arrivals).
    Create,
    /// Handling packet arrival at a node (buffering, mixing, forwarding).
    Arrive,
    /// Handling delay-timer release events (departures).
    Release,
    /// Scheduling future events into the event queue.
    QueuePush,
    /// Selecting a preemption victim in a full RCAD buffer.
    VictimSelect,
    /// Invoking observation probes (telemetry/trace/privacy hooks).
    Probe,
    /// Sharded-runner synchronization: waiting at the conservative
    /// time-window barrier and merging cross-shard handoffs. Serial runs
    /// never enter this phase.
    BarrierWait,
}

impl Phase {
    /// All phases, in index order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::EngineLoop,
        Phase::Create,
        Phase::Arrive,
        Phase::Release,
        Phase::QueuePush,
        Phase::VictimSelect,
        Phase::Probe,
        Phase::BarrierWait,
    ];

    /// Dense index of this phase (`0..PHASE_COUNT`).
    #[must_use]
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable display name (used in tables, JSON, and Chrome traces).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Phase::EngineLoop => "engine_loop",
            Phase::Create => "create",
            Phase::Arrive => "arrive",
            Phase::Release => "release",
            Phase::QueuePush => "queue_push",
            Phase::VictimSelect => "victim_select",
            Phase::Probe => "probe",
            Phase::BarrierWait => "barrier_wait",
        }
    }
}

/// Receiver for phase-boundary notifications from the driver.
///
/// `switch(phase)` declares "from now on, wall-time belongs to `phase`"
/// and returns the phase that was current before the call, so call sites
/// can bracket a region and restore the outer attribution:
///
/// ```
/// use tempriv_sim::profile::{NoopPhaseTimer, Phase, PhaseTimer};
///
/// let mut timer = NoopPhaseTimer;
/// let prev = timer.switch(Phase::VictimSelect);
/// // ... victim scan ...
/// timer.switch(prev);
/// ```
///
/// Implementations must be pure observers: no RNG, no scheduling, no
/// effect on simulation state. Timing is wall-clock and therefore
/// nondeterministic; it must never leak into outcomes or digests.
pub trait PhaseTimer {
    /// Attributes subsequent wall-time to `phase`; returns the previous
    /// phase. The default does nothing and reports `EngineLoop`.
    #[inline]
    fn switch(&mut self, phase: Phase) -> Phase {
        let _ = phase;
        Phase::EngineLoop
    }
}

/// The zero-cost default timer: every switch compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopPhaseTimer;

impl PhaseTimer for NoopPhaseTimer {}

impl<T: PhaseTimer + ?Sized> PhaseTimer for &mut T {
    #[inline]
    fn switch(&mut self, phase: Phase) -> Phase {
        (**self).switch(phase)
    }
}

/// Fans one phase switch out to two timers (e.g. a wall-clock profiler
/// paired with an allocation-scope timer). The pair reports the first
/// timer's notion of the previous phase; both receive every switch, so
/// their attributions stay aligned.
impl<A: PhaseTimer, B: PhaseTimer> PhaseTimer for (A, B) {
    #[inline]
    fn switch(&mut self, phase: Phase) -> Phase {
        let prev = self.0.switch(phase);
        let _ = self.1.switch(phase);
        prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_are_dense_and_named() {
        for (i, phase) in Phase::ALL.iter().enumerate() {
            assert_eq!(phase.index(), i);
            assert!(!phase.name().is_empty());
        }
        let mut names: Vec<_> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PHASE_COUNT, "phase names are unique");
    }

    #[test]
    fn noop_timer_reports_engine_loop() {
        let mut timer = NoopPhaseTimer;
        assert_eq!(timer.switch(Phase::Probe), Phase::EngineLoop);
        let by_ref: &mut NoopPhaseTimer = &mut timer;
        assert_eq!(by_ref.switch(Phase::Create), Phase::EngineLoop);
    }
}

//! Error types for the simulation kernel.

use core::fmt;

use crate::time::SimTime;

/// Result alias for kernel operations.
pub type SimResult<T> = Result<T, SimError>;

/// Errors raised by the simulation kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// An event was scheduled at an absolute time earlier than the clock.
    ScheduleInPast {
        /// Requested delivery time.
        at: SimTime,
        /// Current simulation time.
        now: SimTime,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ScheduleInPast { at, now } => {
                write!(f, "cannot schedule event at {at} before current time {now}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_both_times() {
        let err = SimError::ScheduleInPast {
            at: SimTime::from_units(1.0),
            now: SimTime::from_units(2.0),
        };
        let msg = err.to_string();
        assert!(msg.contains("t=1.0"));
        assert!(msg.contains("t=2.0"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}

//! Property-based tests for the simulation kernel.

use proptest::prelude::*;
use tempriv_sim::queue::EventQueue;
use tempriv_sim::rng::{splitmix64, RngFactory};
use tempriv_sim::stats::{MseAccumulator, OnlineStats, TimeWeighted};
use tempriv_sim::time::{SimDuration, SimTime};

proptest! {
    /// Popping always yields events in non-decreasing time order, with
    /// insertion order breaking ties, no matter the push sequence.
    #[test]
    fn queue_pops_in_total_order(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_ticks(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(t > lt || (t == lt && idx > lidx),
                    "order violated: ({lt:?},{lidx}) then ({t:?},{idx})");
            }
            last = Some((t, idx));
        }
    }

    /// Cancel removes exactly the requested events: the survivors pop,
    /// the cancelled never do, and counts add up.
    #[test]
    fn queue_cancellation_is_exact(
        times in prop::collection::vec(0u64..1_000, 1..150),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..150),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.push(SimTime::from_ticks(t), i))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for (id, &kill) in ids.iter().zip(&cancel_mask) {
            if kill {
                prop_assert!(q.cancel(*id));
                cancelled.insert(*id);
            }
        }
        prop_assert_eq!(q.len(), times.len() - cancelled.len());
        let mut popped = 0usize;
        while q.pop_with_id().is_some() {
            popped += 1;
        }
        prop_assert_eq!(popped, times.len() - cancelled.len());
    }

    /// SimTime arithmetic is associative/consistent within u64 range.
    #[test]
    fn time_arithmetic_round_trips(a in 0u64..1u64 << 40, b in 0u64..1u64 << 40) {
        let t = SimTime::from_ticks(a);
        let d = SimDuration::from_ticks(b);
        let later = t + d;
        prop_assert_eq!(later - t, d);
        prop_assert_eq!(later - d, t);
        prop_assert!(later >= t);
        prop_assert_eq!(later.checked_duration_since(t), Some(d));
    }

    /// Welford merge is order-independent and matches the naive moments.
    #[test]
    fn welford_matches_naive(
        xs in prop::collection::vec(-1e6f64..1e6, 1..100),
        split in 0usize..100,
    ) {
        let split = split.min(xs.len());
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..split] {
            a.record(x);
        }
        for &x in &xs[split..] {
            b.record(x);
        }
        a.merge(&b);
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((whole.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((a.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((whole.population_variance() - var).abs() < 1e-4 * (1.0 + var));
        prop_assert!((a.population_variance() - var).abs() < 1e-4 * (1.0 + var));
    }

    /// MSE decomposes as bias^2 + variance for any error sequence.
    #[test]
    fn mse_bias_variance_decomposition(errs in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let mut acc = MseAccumulator::new();
        for &e in &errs {
            acc.record_error(e);
        }
        let decomposed = acc.bias().powi(2) + acc.error_variance();
        prop_assert!((acc.mse() - decomposed).abs() < 1e-6 * (1.0 + acc.mse()));
    }

    /// Time-weighted average always lies within [min, max] of the values.
    #[test]
    fn time_weighted_average_is_bounded(
        steps in prop::collection::vec((1u64..1_000, -100f64..100.0), 1..50),
    ) {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        let mut now = SimTime::ZERO;
        let mut lo = 0.0f64;
        let mut hi = 0.0f64;
        for &(dt, v) in &steps {
            now += SimDuration::from_ticks(dt);
            tw.update(now, v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let end = now + SimDuration::from_ticks(1);
        let avg = tw.average(end);
        prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9, "avg {avg} not in [{lo}, {hi}]");
    }

    /// Identical (seed, stream) pairs agree; different streams diverge
    /// within a few draws (statistically certain at this scale).
    #[test]
    fn rng_streams_deterministic(seed in any::<u64>(), stream in 0u64..1_000) {
        use rand::RngCore;
        let f = RngFactory::new(seed);
        let a: Vec<u64> = { let mut r = f.stream(stream); (0..4).map(|_| r.next_u64()).collect() };
        let b: Vec<u64> = { let mut r = f.stream(stream); (0..4).map(|_| r.next_u64()).collect() };
        prop_assert_eq!(&a, &b);
        let c: Vec<u64> = {
            let mut r = f.stream(stream.wrapping_add(1));
            (0..4).map(|_| r.next_u64()).collect()
        };
        prop_assert_ne!(a, c);
    }

    /// splitmix64 behaves injectively on small dense ranges (no collisions
    /// among consecutive inputs — a weak but useful sanity property).
    #[test]
    fn splitmix_no_small_range_collisions(base in any::<u64>()) {
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u64 {
            prop_assert!(seen.insert(splitmix64(base.wrapping_add(i))));
        }
    }

    /// The slab-indexed queue agrees with a naive sort-based reference
    /// model under arbitrary interleavings of push, cancel, pop, and
    /// pending-ness queries: identical pop sequences, identical cancel
    /// return values, identical lengths at every step.
    #[test]
    fn queue_matches_reference_model(
        ops in prop::collection::vec((0u8..8, 0u64..400), 1..250),
    ) {
        // Reference: slot i holds Some(time) while the i-th pushed event
        // is still pending; pop takes the minimum (time, slot) pair.
        fn model_pop(model: &mut [Option<SimTime>]) -> Option<(SimTime, usize)> {
            let best = model
                .iter()
                .enumerate()
                .filter_map(|(i, e)| e.map(|t| (t, i)))
                .min()?;
            model[best.1] = None;
            Some(best)
        }

        let mut q = EventQueue::new();
        let mut pushed = Vec::new();
        let mut model: Vec<Option<SimTime>> = Vec::new();
        for &(op, x) in &ops {
            match op {
                0..=3 => {
                    let t = SimTime::from_ticks(x);
                    pushed.push(q.push(t, model.len()));
                    model.push(Some(t));
                }
                4 | 5 if !pushed.is_empty() => {
                    let i = (x as usize) % pushed.len();
                    prop_assert_eq!(q.cancel(pushed[i]), model[i].is_some());
                    model[i] = None;
                }
                6 if !pushed.is_empty() => {
                    let i = (x as usize) % pushed.len();
                    prop_assert_eq!(q.is_pending(pushed[i]), model[i].is_some());
                }
                _ => {
                    prop_assert_eq!(q.pop(), model_pop(&mut model));
                }
            }
            prop_assert_eq!(q.len(), model.iter().flatten().count());
        }
        // Drain: the remaining pop sequence must match the reference.
        loop {
            let got = q.pop();
            prop_assert_eq!(got, model_pop(&mut model));
            if got.is_none() {
                break;
            }
        }
    }
}

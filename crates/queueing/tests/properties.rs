//! Property-based tests for the queueing formulas.

use proptest::prelude::*;
use tempriv_queueing::erlang::{
    erlang_b, min_servers_for_loss, mmkk_occupancy_pmf, offered_load_for_loss,
    service_rate_for_loss,
};
use tempriv_queueing::poisson::{superpose, Poisson};
use tempriv_queueing::tandem::{Erlang, TandemPath};
use tempriv_queueing::tree::QueueTree;

proptest! {
    /// Erlang loss is a probability, increasing in load and decreasing in
    /// servers, for any parameters.
    #[test]
    fn erlang_b_is_probability_and_monotone(rho in 0.0f64..500.0, k in 0u32..200) {
        let b = erlang_b(rho, k);
        prop_assert!((0.0..=1.0).contains(&b));
        let b_more_load = erlang_b(rho + 1.0, k);
        prop_assert!(b_more_load >= b - 1e-12);
        let b_more_servers = erlang_b(rho, k + 1);
        prop_assert!(b_more_servers <= b + 1e-12);
    }

    /// The loss recurrence satisfies its defining identity
    /// `B_k = rho*B_{k-1} / (k + rho*B_{k-1})`.
    #[test]
    fn erlang_b_recurrence_identity(rho in 0.01f64..100.0, k in 1u32..100) {
        let prev = erlang_b(rho, k - 1);
        let expected = rho * prev / (k as f64 + rho * prev);
        prop_assert!((erlang_b(rho, k) - expected).abs() < 1e-12);
    }

    /// The inverse solvers actually invert.
    #[test]
    fn inverse_solvers_round_trip(k in 1u32..60, alpha in 0.001f64..0.9) {
        let rho = offered_load_for_loss(k, alpha);
        prop_assert!((erlang_b(rho, k) - alpha).abs() < 1e-7);
        let lambda = 0.25;
        let mu = service_rate_for_loss(lambda, k, alpha);
        prop_assert!((erlang_b(lambda / mu, k) - alpha).abs() < 1e-7);
    }

    /// min_servers_for_loss returns the *minimal* satisfying k.
    #[test]
    fn min_servers_is_minimal(rho in 0.1f64..80.0, alpha in 0.001f64..0.5) {
        let k = min_servers_for_loss(rho, alpha);
        prop_assert!(erlang_b(rho, k) <= alpha);
        if k > 0 {
            prop_assert!(erlang_b(rho, k - 1) > alpha);
        }
    }

    /// The M/M/k/k occupancy PMF is a distribution whose top state equals
    /// the blocking probability.
    #[test]
    fn mmkk_pmf_is_distribution(rho in 0.01f64..200.0, k in 1u32..100) {
        let pmf = mmkk_occupancy_pmf(rho, k);
        prop_assert_eq!(pmf.len(), k as usize + 1);
        let sum: f64 = pmf.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(pmf.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
        prop_assert!((pmf[k as usize] - erlang_b(rho, k)).abs() < 1e-9);
    }

    /// Poisson CDF is the running sum of the PMF and the quantile inverts it.
    #[test]
    fn poisson_cdf_quantile_consistent(rho in 0.01f64..200.0, q in 0.01f64..0.99) {
        let p = Poisson::new(rho);
        let k = p.quantile(q);
        prop_assert!(p.cdf(k) >= q);
        if k > 0 {
            prop_assert!(p.cdf(k - 1) < q);
        }
    }

    /// Superposition is plain addition, invariant to order.
    #[test]
    fn superposition_commutes(mut rates in prop::collection::vec(0.0f64..10.0, 1..20)) {
        let forward = superpose(rates.iter().copied());
        rates.reverse();
        let backward = superpose(rates.iter().copied());
        prop_assert!((forward - backward).abs() < 1e-9);
    }

    /// Erlang CDF is monotone, within [0,1], and its mean/variance follow
    /// the closed forms.
    #[test]
    fn erlang_distribution_sanity(k in 1u32..40, rate in 0.01f64..10.0) {
        let e = Erlang::new(k, rate);
        prop_assert!((e.mean() - k as f64 / rate).abs() < 1e-9);
        prop_assert!((e.variance() - k as f64 / (rate * rate)).abs() < 1e-9);
        let mut prev = 0.0;
        for i in 0..20 {
            let x = e.mean() * i as f64 / 5.0;
            let c = e.cdf(x);
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!(c >= prev - 1e-12);
            prev = c;
        }
        // Median below mean for any Erlang (right-skewed).
        prop_assert!(e.cdf(e.mean()) >= 0.5);
    }

    /// Tandem path totals equal per-station sums regardless of split.
    #[test]
    fn tandem_totals_are_sums(mus in prop::collection::vec(0.01f64..5.0, 1..20)) {
        let path = TandemPath::new(0.5, mus.clone());
        let mean: f64 = mus.iter().map(|m| 1.0 / m).sum();
        let occ: f64 = mus.iter().map(|m| 0.5 / m).sum();
        prop_assert!((path.total_mean_delay() - mean).abs() < 1e-9);
        prop_assert!((path.total_mean_occupancy() - occ).abs() < 1e-9);
    }

    /// In any randomly grown tree, aggregate rates are non-decreasing
    /// along every leaf-to-root path (traffic only accumulates).
    #[test]
    fn tree_aggregation_monotone_along_paths(
        structure in prop::collection::vec((0usize..8, 0.0f64..2.0), 1..40),
    ) {
        let mut tree = QueueTree::new();
        let mut nodes = vec![QueueTree::ROOT];
        for &(parent_choice, rate) in &structure {
            let parent = nodes[parent_choice % nodes.len()];
            nodes.push(tree.add_node(parent, rate));
        }
        let rates = tree.aggregate_rates();
        for &node in &nodes {
            let mut at = node;
            while let Some(parent) = tree.parent(at) {
                prop_assert!(rates[parent] >= rates[at] - 1e-12);
                at = parent;
            }
        }
        // Root aggregates everything.
        let total: f64 = structure.iter().map(|&(_, r)| r).sum();
        prop_assert!((rates[QueueTree::ROOT] - total).abs() < 1e-9);
    }
}

//! The M/M/k/k finite-buffer model (paper §4).
//!
//! Resource-constrained sensors cannot run M/M/∞: with only `k` buffer
//! slots the station becomes M/M/k/k, arrivals that find the buffer full
//! are dropped (or, under RCAD, trigger a preemption), and the drop
//! probability is the Erlang loss formula.

use serde::{Deserialize, Serialize};

use crate::erlang::{erlang_b, mmkk_occupancy_pmf};

/// An M/M/k/k station: Poisson arrivals, exponential holding, `k` slots.
///
/// # Examples
///
/// ```
/// use tempriv_queueing::mmkk::Mmkk;
///
/// // Paper defaults at the highest traffic rate: rho = 15, k = 10.
/// let station = Mmkk::new(0.5, 1.0 / 30.0, 10);
/// assert!(station.blocking_probability() > 0.3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mmkk {
    lambda: f64,
    mu: f64,
    k: u32,
}

impl Mmkk {
    /// Creates a station with arrival rate `lambda`, service rate `mu`,
    /// and `k` buffer slots.
    ///
    /// # Panics
    ///
    /// Panics if a rate is non-positive/not finite or `k == 0`.
    #[must_use]
    pub fn new(lambda: f64, mu: f64, k: u32) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "arrival rate must be positive, got {lambda}"
        );
        assert!(
            mu.is_finite() && mu > 0.0,
            "service rate must be positive, got {mu}"
        );
        assert!(k > 0, "need at least one buffer slot");
        Mmkk { lambda, mu, k }
    }

    /// Arrival rate λ.
    #[must_use]
    pub const fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Service rate μ.
    #[must_use]
    pub const fn mu(&self) -> f64 {
        self.mu
    }

    /// Buffer slots k.
    #[must_use]
    pub const fn slots(&self) -> u32 {
        self.k
    }

    /// Offered load ρ = λ/μ.
    #[must_use]
    pub fn offered_load(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Probability an arrival finds the buffer full (Erlang loss, eq. 5).
    #[must_use]
    pub fn blocking_probability(&self) -> f64 {
        erlang_b(self.offered_load(), self.k)
    }

    /// Stationary occupancy PMF over `0..=k` (truncated Poisson).
    #[must_use]
    pub fn occupancy_pmf(&self) -> Vec<f64> {
        mmkk_occupancy_pmf(self.offered_load(), self.k)
    }

    /// Mean number of buffered packets (carried load `ρ(1 − E(ρ,k))`).
    #[must_use]
    pub fn mean_occupancy(&self) -> f64 {
        self.offered_load() * (1.0 - self.blocking_probability())
    }

    /// Rate of packets actually admitted: `λ(1 − E(ρ,k))`.
    #[must_use]
    pub fn carried_rate(&self) -> f64 {
        self.lambda * (1.0 - self.blocking_probability())
    }

    /// Rate of packets dropped: `λ·E(ρ,k)`.
    #[must_use]
    pub fn drop_rate(&self) -> f64 {
        self.lambda * self.blocking_probability()
    }

    /// Mean delay experienced by *admitted* packets. Each admitted packet
    /// holds a fresh exponential timer, so by PASTA/insensitivity this is
    /// simply `1/μ` — preemption (RCAD) is what shortens delays, not
    /// admission control.
    #[must_use]
    pub fn mean_admitted_delay(&self) -> f64 {
        1.0 / self.mu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_mean_matches_pmf() {
        let s = Mmkk::new(0.5, 1.0 / 30.0, 10);
        let pmf = s.occupancy_pmf();
        let mean_from_pmf: f64 = pmf.iter().enumerate().map(|(i, p)| i as f64 * p).sum();
        assert!((s.mean_occupancy() - mean_from_pmf).abs() < 1e-9);
    }

    #[test]
    fn carried_plus_dropped_is_offered() {
        let s = Mmkk::new(1.0, 0.05, 10);
        assert!((s.carried_rate() + s.drop_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn light_load_rarely_blocks() {
        let s = Mmkk::new(0.05, 1.0 / 30.0, 10); // rho = 1.5
        assert!(s.blocking_probability() < 0.01);
        assert!((s.mean_occupancy() - 1.5).abs() < 0.05);
    }

    #[test]
    fn blocking_equals_top_state_probability() {
        let s = Mmkk::new(0.5, 1.0 / 30.0, 10);
        let pmf = s.occupancy_pmf();
        assert!((pmf[10] - s.blocking_probability()).abs() < 1e-12);
    }

    #[test]
    fn accessors_round_trip() {
        let s = Mmkk::new(0.5, 0.25, 7);
        assert_eq!(s.lambda(), 0.5);
        assert_eq!(s.mu(), 0.25);
        assert_eq!(s.slots(), 7);
        assert_eq!(s.offered_load(), 2.0);
        assert_eq!(s.mean_admitted_delay(), 4.0);
    }

    #[test]
    #[should_panic(expected = "buffer slot")]
    fn zero_slots_rejected() {
        let _ = Mmkk::new(1.0, 1.0, 0);
    }
}

//! # tempriv-queueing — queueing analysis for temporal privacy
//!
//! Analytic companions to the simulator, implementing §4 of *Temporal
//! Privacy in Wireless Sensor Networks* (ICDCS 2007):
//!
//! * [`erlang`] — the Erlang loss formula `E(ρ, k)` (paper eq. 5) with
//!   numerically stable evaluation and the inverse solvers behind RCAD's
//!   *rate-controlled* tuning,
//! * [`mm_inf`] — the M/M/∞ buffering model (occupancy is Poisson(ρ)),
//! * [`mmkk`] — finite-buffer M/M/k/k stations,
//! * [`tandem`] — multihop paths via Burke's theorem, with Erlang and
//!   hypoexponential end-to-end delay laws,
//! * [`tree`] — routing trees with Poisson superposition and per-node
//!   service-rate assignment for a target drop rate,
//! * [`poisson`] — the Poisson distribution/process utilities everything
//!   above rests on,
//! * [`goodness`] — Kolmogorov–Smirnov and CV² checks used to validate
//!   Burke's theorem on simulated departures,
//! * [`math`] — log-gamma and bisection.
//!
//! # Examples
//!
//! The trade-off at the heart of the paper — privacy wants small μ, buffers
//! want small ρ = λ/μ:
//!
//! ```
//! use tempriv_queueing::erlang::erlang_b;
//! use tempriv_queueing::mm_inf::MmInf;
//!
//! // Paper defaults: inter-arrival 2, mean delay 30, Mica-2 buffer of 10.
//! let station = MmInf::new(0.5, 1.0 / 30.0);
//! assert_eq!(station.mean_occupancy(), 15.0); // needs 15 slots on average
//! let drop = erlang_b(station.utilization(), 10);
//! assert!(drop > 0.3); // ...so a 10-slot buffer drops or preempts often
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod erlang;
pub mod goodness;
pub mod math;
pub mod mm_inf;
pub mod mmkk;
pub mod poisson;
pub mod tandem;
pub mod tree;

pub use erlang::{erlang_b, min_servers_for_loss, offered_load_for_loss, service_rate_for_loss};
pub use goodness::{cv_squared, ks_critical_5pct, ks_exponential, ks_statistic};
pub use mm_inf::MmInf;
pub use mmkk::Mmkk;
pub use poisson::Poisson;
pub use tandem::{Erlang, Hypoexponential, TandemPath};
pub use tree::{QueueTree, TreeNodeId};

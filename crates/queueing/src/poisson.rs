//! Poisson distribution and process utilities.
//!
//! The paper's traffic model leans on two classical properties: the
//! *superposition* of independent Poisson flows is Poisson with the summed
//! rate (how flows merge as they approach the sink, §4), and the M/M/∞
//! occupancy law is a Poisson distribution in `ρ` (§4).

use serde::{Deserialize, Serialize};

use crate::math::ln_factorial;

/// A Poisson distribution with mean `rho`.
///
/// # Examples
///
/// ```
/// use tempriv_queueing::poisson::Poisson;
///
/// let p = Poisson::new(2.0);
/// assert!((p.pmf(0) - (-2.0f64).exp()).abs() < 1e-12);
/// assert_eq!(p.mean(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Poisson {
    rho: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is negative or not finite.
    #[must_use]
    pub fn new(rho: f64) -> Self {
        assert!(
            rho.is_finite() && rho >= 0.0,
            "Poisson mean must be non-negative and finite, got {rho}"
        );
        Poisson { rho }
    }

    /// The distribution mean (and variance) ρ.
    #[must_use]
    pub const fn mean(&self) -> f64 {
        self.rho
    }

    /// The distribution variance (equal to the mean).
    #[must_use]
    pub const fn variance(&self) -> f64 {
        self.rho
    }

    /// `P(N = k)`, evaluated in log space for numerical stability.
    #[must_use]
    pub fn pmf(&self, k: u64) -> f64 {
        if self.rho == 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        (k as f64 * self.rho.ln() - self.rho - ln_factorial(k)).exp()
    }

    /// `P(N ≤ k)` by direct summation of the PMF.
    #[must_use]
    pub fn cdf(&self, k: u64) -> f64 {
        (0..=k).map(|i| self.pmf(i)).sum::<f64>().min(1.0)
    }

    /// Smallest `k` such that `P(N ≤ k) ≥ q` — e.g. the buffer size needed
    /// to hold the M/M/∞ backlog with probability `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `(0, 1)`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        assert!(
            q > 0.0 && q < 1.0,
            "quantile level must be in (0,1), got {q}"
        );
        let mut cum = 0.0;
        let mut k = 0u64;
        loop {
            cum += self.pmf(k);
            if cum >= q {
                return k;
            }
            k += 1;
            assert!(
                k < 100_000_000,
                "quantile summation failed to converge (rho = {})",
                self.rho
            );
        }
    }
}

/// Rate of the superposition of independent Poisson flows (§4: "the
/// combined stream arriving at node i of m independent Poisson processes
/// with rate λ_ij is a Poisson process with rate λ_i = Σ λ_ij").
///
/// # Panics
///
/// Panics if any rate is negative or not finite.
#[must_use]
pub fn superpose<I>(rates: I) -> f64
where
    I: IntoIterator<Item = f64>,
{
    rates
        .into_iter()
        .inspect(|&r| {
            assert!(
                r.is_finite() && r >= 0.0,
                "flow rates must be non-negative and finite, got {r}"
            );
        })
        .sum()
}

/// Total-variation distance between an empirical PMF and a Poisson(ρ) —
/// used by the validation experiments to score how closely simulated buffer
/// occupancy matches the §4 law.
///
/// `empirical` is a list of `(state, probability)` pairs; any residual
/// Poisson mass beyond the listed states counts toward the distance.
#[must_use]
pub fn total_variation_vs_poisson(empirical: &[(u64, f64)], rho: f64) -> f64 {
    let p = Poisson::new(rho);
    let mut tv = 0.0;
    let mut poisson_mass_covered = 0.0;
    for &(k, prob) in empirical {
        let pk = p.pmf(k);
        tv += (prob - pk).abs();
        poisson_mass_covered += pk;
    }
    tv += 1.0 - poisson_mass_covered.min(1.0);
    tv / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        let p = Poisson::new(7.5);
        let total: f64 = (0..200).map(|k| p.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_known_values() {
        let p = Poisson::new(1.0);
        let e = std::f64::consts::E;
        assert!((p.pmf(0) - 1.0 / e).abs() < 1e-12);
        assert!((p.pmf(1) - 1.0 / e).abs() < 1e-12);
        assert!((p.pmf(2) - 0.5 / e).abs() < 1e-12);
    }

    #[test]
    fn degenerate_at_zero() {
        let p = Poisson::new(0.0);
        assert_eq!(p.pmf(0), 1.0);
        assert_eq!(p.pmf(3), 0.0);
        assert_eq!(p.cdf(0), 1.0);
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let p = Poisson::new(4.0);
        let mut prev = 0.0;
        for k in 0..30 {
            let c = p.cdf(k);
            assert!(c >= prev && c <= 1.0);
            prev = c;
        }
        assert!((p.cdf(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_is_inverse_of_cdf() {
        let p = Poisson::new(15.0);
        for &q in &[0.1, 0.5, 0.9, 0.999] {
            let k = p.quantile(q);
            assert!(p.cdf(k) >= q);
            if k > 0 {
                assert!(p.cdf(k - 1) < q);
            }
        }
    }

    #[test]
    fn quantile_mean_relation() {
        // Median of Poisson is within ~1 of the mean for large rho.
        let p = Poisson::new(100.0);
        let median = p.quantile(0.5) as f64;
        assert!((median - 100.0).abs() <= 2.0);
    }

    #[test]
    fn superpose_sums_rates() {
        assert_eq!(superpose([0.1, 0.2, 0.3]), 0.6000000000000001);
        assert_eq!(superpose(std::iter::empty::<f64>()), 0.0);
    }

    #[test]
    fn paper_superposition_example() {
        // Four sources at rate lambda merge to 4*lambda before the sink.
        let lambda = 1.0 / 2.0;
        assert_eq!(superpose(vec![lambda; 4]), 2.0);
    }

    #[test]
    fn tv_distance_zero_for_exact_pmf() {
        let p = Poisson::new(3.0);
        let empirical: Vec<(u64, f64)> = (0..100).map(|k| (k, p.pmf(k))).collect();
        assert!(total_variation_vs_poisson(&empirical, 3.0) < 1e-10);
    }

    #[test]
    fn tv_distance_large_for_wrong_rho() {
        let p = Poisson::new(1.0);
        let empirical: Vec<(u64, f64)> = (0..100).map(|k| (k, p.pmf(k))).collect();
        assert!(total_variation_vs_poisson(&empirical, 20.0) > 0.9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_rejected() {
        let _ = superpose([1.0, -0.5]);
    }
}

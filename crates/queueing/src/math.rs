//! Numeric helpers: log-gamma, log-factorial, and a robust bisection solver.

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~1e-13 relative error for positive arguments, which is far
/// tighter than anything the queueing formulas need.
///
/// # Panics
///
/// Panics if `x <= 0` (the reflection branch is not needed here).
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision, clippy::inconsistent_digit_grouping)]
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula for completeness on (0, 0.5).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + G + 0.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Natural log of `n!`.
#[must_use]
pub fn ln_factorial(n: u64) -> f64 {
    // Exact products stay cheap and exact for small n.
    if n < 16 {
        let mut acc = 1.0f64;
        for i in 2..=n {
            acc *= i as f64;
        }
        acc.ln()
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// Finds a root of `f` on `[lo, hi]` by bisection.
///
/// `f(lo)` and `f(hi)` must bracket a sign change. Returns the midpoint of
/// the final bracket after `iterations` halvings (64 halvings exhaust f64
/// precision).
///
/// # Errors
///
/// Returns [`BracketError`] if the endpoints do not bracket a sign change.
pub fn bisect<F>(mut f: F, mut lo: f64, mut hi: f64, iterations: u32) -> Result<f64, BracketError>
where
    F: FnMut(f64) -> f64,
{
    let flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(BracketError { lo, hi, flo, fhi });
    }
    for _ in 0..iterations {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if fmid == 0.0 {
            return Ok(mid);
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// The endpoints handed to [`bisect`] did not bracket a root.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BracketError {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
    /// `f(lo)`.
    pub flo: f64,
    /// `f(hi)`.
    pub fhi: f64,
}

impl core::fmt::Display for BracketError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "no sign change on [{}, {}]: f(lo)={}, f(hi)={}",
            self.lo, self.hi, self.flo, self.fhi
        )
    }
}

impl std::error::Error for BracketError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..15u64 {
            let exact: f64 = (1..n).map(|i| (i as f64).ln()).sum();
            assert!(
                (ln_gamma(n as f64) - exact).abs() < 1e-10,
                "ln_gamma({n}) = {} vs {exact}",
                ln_gamma(n as f64)
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Gamma(1/2) = sqrt(pi)
        let expected = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expected).abs() < 1e-12);
    }

    #[test]
    fn ln_factorial_consistency() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
        assert!((ln_factorial(20) - ln_gamma(21.0)).abs() < 1e-9);
        // Continuity across the exact/gamma switchover at 16.
        let below = ln_factorial(15);
        let above = ln_factorial(16);
        assert!((above - below - 16f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn bisect_finds_sqrt2() {
        let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 80).unwrap();
        assert!((root - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn bisect_accepts_exact_endpoint() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 10), Ok(0.0));
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 10), Ok(1.0));
    }

    #[test]
    fn bisect_reports_bad_bracket() {
        let err = bisect(|x| x * x + 1.0, -1.0, 1.0, 10).unwrap_err();
        assert!(err.to_string().contains("no sign change"));
    }
}

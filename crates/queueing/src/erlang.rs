//! The Erlang loss formula and its inverses (paper §4, eq. 5).
//!
//! For an M/M/k/k station with offered load `ρ = λ/μ`, the probability that
//! an arriving packet finds all `k` buffer slots full is
//!
//! ```text
//! E(ρ, k) = (ρᵏ/k!) / Σ_{i=0..k} ρⁱ/i!
//! ```
//!
//! The paper uses this in two places: (1) RCAD's *rate-controlled* design —
//! pick μ per node so that the drop/preemption probability stays at a target
//! α as traffic aggregates toward the sink; (2) the *adaptive adversary*,
//! which compares `E(λ̂_tot/μ, k)` against a threshold (0.1 in the paper) to
//! decide whether preemption dominates the observed delays.

use crate::math::bisect;

/// Erlang loss (Erlang-B) probability `E(ρ, k)`.
///
/// Evaluated with the standard numerically stable recurrence
/// `B₀ = 1; B_j = ρ·B_{j−1} / (j + ρ·B_{j−1})`, which never forms large
/// factorials and is monotone-stable for any `ρ ≥ 0`.
///
/// # Panics
///
/// Panics if `rho` is negative or not finite.
///
/// # Examples
///
/// ```
/// use tempriv_queueing::erlang::erlang_b;
///
/// // Classic telephony value: E(2, 5) ≈ 0.0367.
/// assert!((erlang_b(2.0, 5) - 0.036697).abs() < 1e-5);
/// // No servers: every arrival is lost.
/// assert_eq!(erlang_b(2.0, 0), 1.0);
/// ```
#[must_use]
pub fn erlang_b(rho: f64, k: u32) -> f64 {
    assert!(
        rho.is_finite() && rho >= 0.0,
        "offered load must be non-negative and finite, got {rho}"
    );
    if rho == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    let mut b = 1.0f64;
    for j in 1..=k {
        b = rho * b / (j as f64 + rho * b);
    }
    b
}

/// Occupancy PMF of an M/M/k/k station: truncated Poisson
/// `p_i = (ρⁱ/i!) / Σ_{j=0..k} ρʲ/j!` for `i = 0..=k`.
///
/// # Panics
///
/// Panics if `rho` is negative or not finite.
#[must_use]
pub fn mmkk_occupancy_pmf(rho: f64, k: u32) -> Vec<f64> {
    assert!(
        rho.is_finite() && rho >= 0.0,
        "offered load must be non-negative and finite, got {rho}"
    );
    // Build unnormalized terms iteratively: t_0 = 1, t_i = t_{i-1} * rho / i.
    // Normalizing as we go keeps everything finite even for large rho.
    let mut terms = Vec::with_capacity(k as usize + 1);
    let mut t = 1.0f64;
    let mut max_t = 1.0f64;
    terms.push(t);
    for i in 1..=k {
        t = t * rho / i as f64;
        max_t = max_t.max(t);
        terms.push(t);
    }
    let sum: f64 = terms.iter().map(|x| x / max_t).sum();
    terms.into_iter().map(|x| (x / max_t) / sum).collect()
}

/// Smallest `k` such that `E(ρ, k) ≤ alpha`.
///
/// # Panics
///
/// Panics if `alpha` is not in `(0, 1]`.
///
/// # Examples
///
/// ```
/// use tempriv_queueing::erlang::{erlang_b, min_servers_for_loss};
///
/// let k = min_servers_for_loss(10.0, 0.01);
/// assert!(erlang_b(10.0, k) <= 0.01);
/// assert!(k == 0 || erlang_b(10.0, k - 1) > 0.01);
/// ```
#[must_use]
pub fn min_servers_for_loss(rho: f64, alpha: f64) -> u32 {
    assert!(
        alpha > 0.0 && alpha <= 1.0,
        "target loss must be in (0, 1], got {alpha}"
    );
    let mut k = 0u32;
    // E(rho, k) -> 0 as k -> inf, so this terminates; the recurrence form
    // below reuses B_{k-1} rather than recomputing from scratch.
    let mut b = 1.0f64;
    while b > alpha {
        k += 1;
        b = rho * b / (k as f64 + rho * b);
        assert!(k < 1_000_000, "loss target unreachable (rho = {rho})");
    }
    k
}

/// The offered load `ρ*` at which `E(ρ*, k) = alpha` — the inverse of the
/// loss formula in its first argument (which is strictly increasing in ρ).
///
/// # Panics
///
/// Panics if `k == 0` (loss is identically 1) or `alpha` is not in (0, 1).
#[must_use]
pub fn offered_load_for_loss(k: u32, alpha: f64) -> f64 {
    assert!(k > 0, "a station with no buffer slots always drops");
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "target loss must be in (0, 1), got {alpha}"
    );
    // Bracket: E(0, k) = 0 < alpha; grow hi until E(hi, k) > alpha.
    let mut hi = 1.0f64;
    while erlang_b(hi, k) < alpha {
        hi *= 2.0;
        assert!(hi < 1e12, "loss target {alpha} unreachable for k = {k}");
    }
    bisect(|rho| erlang_b(rho, k) - alpha, 0.0, hi, 200)
        .expect("erlang_b is monotone; bracket is valid")
}

/// Chooses the service rate μ (i.e. the reciprocal mean buffering delay)
/// that holds the drop probability of an M/M/k/k buffer at `alpha` for
/// incoming traffic rate `lambda` — the paper's rate-controlled tuning rule
/// ("as we approach the sink and λ increases, we must decrease the average
/// delay time 1/μ to maintain E(ρ,k) at a target packet drop rate α").
///
/// # Panics
///
/// Panics if `lambda <= 0`, `k == 0`, or `alpha` not in (0, 1).
///
/// # Examples
///
/// ```
/// use tempriv_queueing::erlang::{erlang_b, service_rate_for_loss};
///
/// let mu = service_rate_for_loss(0.5, 10, 0.1);
/// assert!((erlang_b(0.5 / mu, 10) - 0.1).abs() < 1e-9);
/// ```
#[must_use]
pub fn service_rate_for_loss(lambda: f64, k: u32, alpha: f64) -> f64 {
    assert!(
        lambda.is_finite() && lambda > 0.0,
        "arrival rate must be positive, got {lambda}"
    );
    lambda / offered_load_for_loss(k, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::ln_factorial;

    /// Direct (unstable) evaluation of the loss formula for cross-checking.
    fn erlang_b_direct(rho: f64, k: u32) -> f64 {
        let ln_num = k as f64 * rho.ln() - ln_factorial(k as u64);
        let denom: f64 = (0..=k)
            .map(|i| (i as f64 * rho.ln() - ln_factorial(i as u64) - ln_num).exp())
            .sum();
        1.0 / denom
    }

    #[test]
    fn matches_direct_formula() {
        for &(rho, k) in &[(0.5, 1u32), (2.0, 5), (10.0, 10), (15.0, 10), (30.0, 10)] {
            let fast = erlang_b(rho, k);
            let direct = erlang_b_direct(rho, k);
            assert!(
                (fast - direct).abs() < 1e-10,
                "E({rho},{k}): {fast} vs {direct}"
            );
        }
    }

    #[test]
    fn known_telephony_values() {
        // Tabulated Erlang-B values.
        assert!((erlang_b(1.0, 1) - 0.5).abs() < 1e-12);
        assert!((erlang_b(2.0, 2) - 0.4).abs() < 1e-12);
        assert!((erlang_b(3.0, 3) - 0.346).abs() < 5e-4);
    }

    #[test]
    fn zero_load_never_blocks() {
        assert_eq!(erlang_b(0.0, 10), 0.0);
        assert_eq!(erlang_b(0.0, 0), 1.0);
    }

    #[test]
    fn monotone_increasing_in_rho() {
        let mut prev = 0.0;
        for i in 1..50 {
            let b = erlang_b(i as f64 * 0.5, 10);
            assert!(b > prev);
            prev = b;
        }
    }

    #[test]
    fn monotone_decreasing_in_k() {
        let mut prev = 1.0;
        for k in 1..30 {
            let b = erlang_b(8.0, k);
            assert!(b < prev, "E(8,{k}) = {b} !< {prev}");
            prev = b;
        }
    }

    #[test]
    fn heavy_traffic_limit() {
        // As rho -> inf with fixed k, E -> 1 - k/rho + o(1/rho).
        let b = erlang_b(1e6, 10);
        assert!((b - (1.0 - 10.0 / 1e6)).abs() < 1e-9);
    }

    #[test]
    fn occupancy_pmf_normalizes_and_truncates() {
        let pmf = mmkk_occupancy_pmf(15.0, 10);
        assert_eq!(pmf.len(), 11);
        let sum: f64 = pmf.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Blocking probability = P(N = k).
        assert!((pmf[10] - erlang_b(15.0, 10)).abs() < 1e-12);
    }

    #[test]
    fn occupancy_pmf_small_load_concentrates_at_zero() {
        let pmf = mmkk_occupancy_pmf(0.01, 5);
        assert!(pmf[0] > 0.99);
    }

    #[test]
    fn occupancy_pmf_handles_huge_load() {
        let pmf = mmkk_occupancy_pmf(1e8, 10);
        let sum: f64 = pmf.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(pmf[10] > 0.999);
    }

    #[test]
    fn min_servers_inverse_of_loss() {
        for &rho in &[0.5, 2.0, 10.0, 40.0] {
            for &alpha in &[0.2, 0.05, 0.01] {
                let k = min_servers_for_loss(rho, alpha);
                assert!(erlang_b(rho, k) <= alpha);
                if k > 0 {
                    assert!(erlang_b(rho, k - 1) > alpha);
                }
            }
        }
    }

    #[test]
    fn offered_load_inverts_loss() {
        for &k in &[1u32, 5, 10, 50] {
            for &alpha in &[0.01, 0.1, 0.5] {
                let rho = offered_load_for_loss(k, alpha);
                assert!(
                    (erlang_b(rho, k) - alpha).abs() < 1e-9,
                    "k={k} alpha={alpha} rho={rho}"
                );
            }
        }
    }

    #[test]
    fn service_rate_scales_linearly_with_lambda() {
        let mu1 = service_rate_for_loss(0.5, 10, 0.1);
        let mu2 = service_rate_for_loss(1.0, 10, 0.1);
        assert!((mu2 / mu1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn paper_adaptive_threshold_scenario() {
        // Paper §5.4: aggregate traffic of 4 flows, k = 10, 1/mu = 30.
        // At 1/lambda = 2 per flow, lambda_tot = 2.0 => rho = 60: loss is
        // far above the 0.1 threshold (adversary switches strategy).
        assert!(erlang_b(2.0 * 30.0, 10) > 0.1);
        // At 1/lambda = 20 per flow, lambda_tot = 0.2 => rho = 6: loss is
        // below the threshold (adversary keeps the h/mu estimate).
        assert!(erlang_b(0.2 * 30.0, 10) < 0.1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_load_rejected() {
        let _ = erlang_b(-1.0, 3);
    }

    #[test]
    #[should_panic(expected = "no buffer slots")]
    fn zero_k_inverse_rejected() {
        let _ = offered_load_for_loss(0, 0.1);
    }
}

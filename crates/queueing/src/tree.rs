//! Routing-tree queueing model (paper §4).
//!
//! A convergecast sensor network is a tree rooted at the sink. Message
//! streams merge as they flow rootward; by Poisson superposition the
//! aggregate arrival rate at node *i* is the sum of the external rates in
//! its subtree. Each non-root node is then an M/M/∞ (or M/M/k/k) station
//! with that aggregate rate, which yields the paper's key design rule: as
//! traffic accumulates toward the sink, the mean buffering delay 1/μ must
//! shrink to keep the Erlang loss at a target α.

use serde::{Deserialize, Serialize};

use crate::erlang::{erlang_b, service_rate_for_loss};
use crate::mm_inf::MmInf;

/// Index of a node within a [`QueueTree`].
pub type TreeNodeId = usize;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct TreeNode {
    parent: Option<TreeNodeId>,
    children: Vec<TreeNodeId>,
    external_rate: f64,
}

/// A rooted tree of buffering stations with external Poisson traffic.
///
/// Node 0 is always the root (the sink, which does not buffer). All other
/// nodes buffer and forward toward the root.
///
/// # Examples
///
/// ```
/// use tempriv_queueing::tree::QueueTree;
///
/// // sink <- relay <- {sensor A, sensor B}
/// let mut tree = QueueTree::new();
/// let relay = tree.add_node(QueueTree::ROOT, 0.0);
/// tree.add_node(relay, 0.25);
/// tree.add_node(relay, 0.25);
/// let rates = tree.aggregate_rates();
/// assert_eq!(rates[relay], 0.5); // superposition of both sensors
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueTree {
    nodes: Vec<TreeNode>,
}

impl QueueTree {
    /// The root (sink) node id.
    pub const ROOT: TreeNodeId = 0;

    /// Creates a tree containing only the sink.
    #[must_use]
    pub fn new() -> Self {
        QueueTree {
            nodes: vec![TreeNode {
                parent: None,
                children: Vec::new(),
                external_rate: 0.0,
            }],
        }
    }

    /// Adds a node under `parent` that injects `external_rate` of its own
    /// traffic (0 for pure relays); returns the new node's id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` does not exist or `external_rate` is negative or
    /// not finite.
    pub fn add_node(&mut self, parent: TreeNodeId, external_rate: f64) -> TreeNodeId {
        assert!(parent < self.nodes.len(), "unknown parent node {parent}");
        assert!(
            external_rate.is_finite() && external_rate >= 0.0,
            "external rate must be non-negative and finite, got {external_rate}"
        );
        let id = self.nodes.len();
        self.nodes.push(TreeNode {
            parent: Some(parent),
            children: Vec::new(),
            external_rate,
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// Adds a chain of `hops` relay nodes under `parent`, returning the id
    /// of the far end (useful for building multihop paths).
    pub fn add_chain(&mut self, parent: TreeNodeId, hops: u32) -> TreeNodeId {
        let mut at = parent;
        for _ in 0..hops {
            at = self.add_node(at, 0.0);
        }
        at
    }

    /// Number of nodes, including the root.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `false`: a tree always contains at least the root.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The parent of `node`, or `None` for the root.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist.
    #[must_use]
    pub fn parent(&self, node: TreeNodeId) -> Option<TreeNodeId> {
        self.nodes[node].parent
    }

    /// External (locally generated) rate at `node`.
    #[must_use]
    pub fn external_rate(&self, node: TreeNodeId) -> f64 {
        self.nodes[node].external_rate
    }

    /// Ids on the path from `node` (inclusive) to the root (exclusive).
    #[must_use]
    pub fn path_to_root(&self, node: TreeNodeId) -> Vec<TreeNodeId> {
        let mut path = Vec::new();
        let mut at = node;
        while let Some(p) = self.nodes[at].parent {
            path.push(at);
            at = p;
        }
        path
    }

    /// Hop count from `node` to the root.
    #[must_use]
    pub fn depth(&self, node: TreeNodeId) -> u32 {
        self.path_to_root(node).len() as u32
    }

    /// Aggregate Poisson arrival rate handled by each node: its own
    /// external rate plus everything forwarded from its subtree.
    #[must_use]
    pub fn aggregate_rates(&self) -> Vec<f64> {
        let mut rates: Vec<f64> = self.nodes.iter().map(|n| n.external_rate).collect();
        // Children always have larger ids than parents (construction
        // invariant), so one reverse pass accumulates subtrees.
        for id in (1..self.nodes.len()).rev() {
            let parent = self.nodes[id].parent.expect("non-root has parent");
            rates[parent] += rates[id];
        }
        rates
    }

    /// Per-node M/M/∞ stations for a common service rate `mu`. Entries are
    /// `None` for the root and for nodes carrying no traffic.
    #[must_use]
    pub fn stations_uniform(&self, mu: f64) -> Vec<Option<MmInf>> {
        let rates = self.aggregate_rates();
        rates
            .iter()
            .enumerate()
            .map(|(id, &lambda)| (id != Self::ROOT && lambda > 0.0).then(|| MmInf::new(lambda, mu)))
            .collect()
    }

    /// Expected total buffered packets across the network for a common μ.
    #[must_use]
    pub fn total_mean_occupancy(&self, mu: f64) -> f64 {
        self.stations_uniform(mu)
            .iter()
            .flatten()
            .map(MmInf::mean_occupancy)
            .sum()
    }

    /// Per-node drop probability for k-slot buffers and a common μ.
    /// Entries are `None` for the root and idle nodes.
    #[must_use]
    pub fn loss_probabilities(&self, mu: f64, k: u32) -> Vec<Option<f64>> {
        let rates = self.aggregate_rates();
        rates
            .iter()
            .enumerate()
            .map(|(id, &lambda)| {
                (id != Self::ROOT && lambda > 0.0).then(|| erlang_b(lambda / mu, k))
            })
            .collect()
    }

    /// The paper's rate-controlled design rule: assign each node the
    /// service rate μᵢ that pins its Erlang loss at `alpha` given k buffer
    /// slots and the node's aggregate traffic. Nodes closer to the sink
    /// (larger aggregate λ) receive larger μ, i.e. shorter delays.
    ///
    /// Entries are `None` for the root and idle nodes.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `alpha` is not in (0, 1).
    #[must_use]
    pub fn assign_service_rates_for_loss(&self, k: u32, alpha: f64) -> Vec<Option<f64>> {
        let rates = self.aggregate_rates();
        rates
            .iter()
            .enumerate()
            .map(|(id, &lambda)| {
                (id != Self::ROOT && lambda > 0.0).then(|| service_rate_for_loss(lambda, k, alpha))
            })
            .collect()
    }

    /// Expected artificial delay along the path from `node` to the sink
    /// for per-node service rates `mus` (as produced by
    /// [`QueueTree::assign_service_rates_for_loss`]); nodes with `None`
    /// contribute no delay.
    #[must_use]
    pub fn path_mean_delay(&self, node: TreeNodeId, mus: &[Option<f64>]) -> f64 {
        self.path_to_root(node)
            .iter()
            .filter_map(|&id| mus.get(id).copied().flatten())
            .map(|mu| 1.0 / mu)
            .sum()
    }
}

impl Default for QueueTree {
    fn default() -> Self {
        QueueTree::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure-1-style layout: four flows with hop counts
    /// 15, 22, 9, 11 sharing a 6-hop trunk into the sink.
    fn paper_tree(lambda: f64) -> (QueueTree, [TreeNodeId; 4]) {
        let mut tree = QueueTree::new();
        let trunk_top = tree.add_chain(QueueTree::ROOT, 6);
        let s1 = {
            let end = tree.add_chain(trunk_top, 8);
            tree.add_node(end, lambda) // 6 + 8 + 1 = 15 hops
        };
        let s2 = {
            let end = tree.add_chain(trunk_top, 15);
            tree.add_node(end, lambda) // 22 hops
        };
        let s3 = {
            let end = tree.add_chain(trunk_top, 2);
            tree.add_node(end, lambda) // 9 hops
        };
        let s4 = {
            let end = tree.add_chain(trunk_top, 4);
            tree.add_node(end, lambda) // 11 hops
        };
        (tree, [s1, s2, s3, s4])
    }

    #[test]
    fn depths_match_paper_hop_counts() {
        let (tree, [s1, s2, s3, s4]) = paper_tree(0.5);
        assert_eq!(tree.depth(s1), 15);
        assert_eq!(tree.depth(s2), 22);
        assert_eq!(tree.depth(s3), 9);
        assert_eq!(tree.depth(s4), 11);
    }

    #[test]
    fn aggregate_rates_superpose_on_trunk() {
        let (tree, [s1, ..]) = paper_tree(0.5);
        let rates = tree.aggregate_rates();
        // Source node carries its own flow.
        assert_eq!(rates[s1], 0.5);
        // First trunk node (child of root) carries all four flows.
        let trunk_first = tree.path_to_root(s1)[14]; // last before root
        assert_eq!(rates[trunk_first], 2.0);
        // Root sees everything.
        assert_eq!(rates[QueueTree::ROOT], 2.0);
    }

    #[test]
    fn path_to_root_orders_leaf_first() {
        let mut tree = QueueTree::new();
        let a = tree.add_node(QueueTree::ROOT, 0.0);
        let b = tree.add_node(a, 1.0);
        assert_eq!(tree.path_to_root(b), vec![b, a]);
        assert_eq!(tree.path_to_root(QueueTree::ROOT), Vec::<usize>::new());
        assert_eq!(tree.parent(b), Some(a));
        assert_eq!(tree.parent(QueueTree::ROOT), None);
    }

    #[test]
    fn stations_skip_root_and_idle_nodes() {
        let mut tree = QueueTree::new();
        let relay = tree.add_node(QueueTree::ROOT, 0.0);
        let src = tree.add_node(relay, 0.5);
        let idle = tree.add_node(QueueTree::ROOT, 0.0);
        let stations = tree.stations_uniform(1.0 / 30.0);
        assert!(stations[QueueTree::ROOT].is_none());
        assert!(stations[relay].is_some());
        assert!(stations[src].is_some());
        assert!(stations[idle].is_none());
    }

    #[test]
    fn total_occupancy_sums_station_loads() {
        let mut tree = QueueTree::new();
        let relay = tree.add_node(QueueTree::ROOT, 0.0);
        tree.add_node(relay, 0.25);
        tree.add_node(relay, 0.25);
        // relay rho = 0.5*30 = 15, each source rho = 0.25*30 = 7.5.
        assert!((tree.total_mean_occupancy(1.0 / 30.0) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn loss_grows_toward_sink_with_uniform_mu() {
        let (tree, [s1, ..]) = paper_tree(0.5);
        let losses = tree.loss_probabilities(1.0 / 30.0, 10);
        let path = tree.path_to_root(s1);
        let source_loss = losses[*path.first().unwrap()].unwrap();
        let trunk_loss = losses[path[14]].unwrap();
        assert!(
            trunk_loss > source_loss,
            "trunk {trunk_loss} vs source {source_loss}"
        );
    }

    #[test]
    fn rate_controlled_assignment_equalizes_loss() {
        let (tree, _) = paper_tree(0.5);
        let k = 10;
        let alpha = 0.05;
        let mus = tree.assign_service_rates_for_loss(k, alpha);
        let rates = tree.aggregate_rates();
        for (id, mu) in mus.iter().enumerate() {
            if let Some(mu) = mu {
                let loss = erlang_b(rates[id] / mu, k);
                assert!((loss - alpha).abs() < 1e-8, "node {id}: loss {loss}");
            }
        }
    }

    #[test]
    fn rate_controlled_mu_increases_toward_sink() {
        let (tree, [s1, ..]) = paper_tree(0.5);
        let mus = tree.assign_service_rates_for_loss(10, 0.05);
        let path = tree.path_to_root(s1);
        let mu_source = mus[path[0]].unwrap();
        let mu_trunk = mus[path[14]].unwrap();
        // 4x the traffic => 4x the service rate (Erlang target is linear
        // in lambda at fixed rho*).
        assert!((mu_trunk / mu_source - 4.0).abs() < 1e-6);
    }

    #[test]
    fn path_mean_delay_accumulates() {
        let mut tree = QueueTree::new();
        let a = tree.add_node(QueueTree::ROOT, 0.0);
        let b = tree.add_node(a, 1.0);
        let mus = vec![None, Some(0.1), Some(0.2)];
        assert!((tree.path_mean_delay(b, &mus) - 15.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unknown parent")]
    fn bad_parent_rejected() {
        let mut tree = QueueTree::new();
        tree.add_node(42, 0.0);
    }
}

//! Tandem queueing paths (paper §4).
//!
//! On a multihop route `S → F₁ → ⋯ → F_{N−1} → R` each node delays packets
//! independently, forming a tandem of M/M/∞ stations. Burke's theorem says
//! the departure process of each station is Poisson at the arrival rate, so
//! every station downstream still sees Poisson input and the per-station
//! occupancy laws compose. The end-to-end artificial delay is the sum of
//! independent exponentials: an Erlang distribution when all stations share
//! one rate, a hypoexponential when they differ.

use serde::{Deserialize, Serialize};

use crate::math::ln_factorial;
use crate::mm_inf::MmInf;

/// Erlang(k, rate) distribution — the sum of `k` i.i.d. exponential delays.
///
/// This is also the creation-time law of the paper's §3.2: for a Poisson
/// source, `X_j = Σ A_k` is j-stage Erlangian with mean `j/λ`.
///
/// # Examples
///
/// ```
/// use tempriv_queueing::tandem::Erlang;
///
/// // 15 hops at mean delay 30 each.
/// let e = Erlang::new(15, 1.0 / 30.0);
/// assert_eq!(e.mean(), 450.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Erlang {
    k: u32,
    rate: f64,
}

impl Erlang {
    /// Creates an Erlang distribution with shape `k` and rate `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `rate` is non-positive or not finite.
    #[must_use]
    pub fn new(k: u32, rate: f64) -> Self {
        assert!(k > 0, "Erlang shape must be positive");
        assert!(
            rate.is_finite() && rate > 0.0,
            "Erlang rate must be positive, got {rate}"
        );
        Erlang { k, rate }
    }

    /// Shape parameter (number of exponential stages).
    #[must_use]
    pub const fn shape(&self) -> u32 {
        self.k
    }

    /// Rate parameter of each stage.
    #[must_use]
    pub const fn rate(&self) -> f64 {
        self.rate
    }

    /// Mean `k/rate`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.k as f64 / self.rate
    }

    /// Variance `k/rate²`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.k as f64 / (self.rate * self.rate)
    }

    /// Probability density at `x` (0 for negative `x`).
    #[must_use]
    pub fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            return if self.k == 1 { self.rate } else { 0.0 };
        }
        let k = self.k as f64;
        (k * self.rate.ln() + (k - 1.0) * x.ln() - self.rate * x - ln_factorial(self.k as u64 - 1))
            .exp()
    }

    /// Cumulative distribution at `x`: `1 − Σ_{i<k} e^{−rx}(rx)ⁱ/i!`.
    #[must_use]
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let rx = self.rate * x;
        let mut term = 1.0f64; // (rx)^0 / 0!
        let mut sum = term;
        for i in 1..self.k {
            term *= rx / i as f64;
            sum += term;
        }
        (1.0 - (-rx).exp() * sum).clamp(0.0, 1.0)
    }
}

/// Hypoexponential distribution — the sum of independent exponentials with
/// *distinct* rates; the end-to-end delay law when each hop uses its own μ
/// (the per-node decomposition of §3.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hypoexponential {
    rates: Vec<f64>,
    /// Partial-fraction coefficients for the density.
    coeffs: Vec<f64>,
}

impl Hypoexponential {
    /// Creates the distribution from per-stage rates.
    ///
    /// # Panics
    ///
    /// Panics if `rates` is empty, any rate is non-positive/not finite, or
    /// two rates coincide (use [`Erlang`] or split the stages for repeated
    /// rates).
    #[must_use]
    pub fn new(rates: Vec<f64>) -> Self {
        assert!(!rates.is_empty(), "need at least one stage");
        for &r in &rates {
            assert!(
                r.is_finite() && r > 0.0,
                "stage rates must be positive, got {r}"
            );
        }
        for i in 0..rates.len() {
            for j in (i + 1)..rates.len() {
                assert!(
                    (rates[i] - rates[j]).abs() > 1e-12 * rates[i].max(rates[j]),
                    "hypoexponential rates must be distinct; got repeated rate {}",
                    rates[i]
                );
            }
        }
        let coeffs = rates
            .iter()
            .enumerate()
            .map(|(i, &ri)| {
                rates
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &rj)| rj / (rj - ri))
                    .product()
            })
            .collect();
        Hypoexponential { rates, coeffs }
    }

    /// Mean `Σ 1/rᵢ`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.rates.iter().map(|r| 1.0 / r).sum()
    }

    /// Variance `Σ 1/rᵢ²`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.rates.iter().map(|r| 1.0 / (r * r)).sum()
    }

    /// Probability density at `x` (0 for negative `x`).
    #[must_use]
    pub fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        self.rates
            .iter()
            .zip(&self.coeffs)
            .map(|(&r, &c)| c * r * (-r * x).exp())
            .sum::<f64>()
            .max(0.0)
    }

    /// Cumulative distribution at `x`.
    #[must_use]
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let s: f64 = self
            .rates
            .iter()
            .zip(&self.coeffs)
            .map(|(&r, &c)| c * (1.0 - (-r * x).exp()))
            .sum();
        s.clamp(0.0, 1.0)
    }
}

/// A tandem path of M/M/∞ stations fed by one Poisson flow.
///
/// # Examples
///
/// ```
/// use tempriv_queueing::tandem::TandemPath;
///
/// // 15 hops, each delaying by mean 30, fed at lambda = 1/2.
/// let path = TandemPath::uniform(0.5, 15, 1.0 / 30.0);
/// assert_eq!(path.total_mean_delay(), 450.0);
/// assert_eq!(path.total_mean_occupancy(), 225.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TandemPath {
    lambda: f64,
    mus: Vec<f64>,
}

impl TandemPath {
    /// A path whose stations use individual service rates `mus`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is non-positive/not finite, `mus` is empty, or
    /// any μ is non-positive/not finite.
    #[must_use]
    pub fn new(lambda: f64, mus: Vec<f64>) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "arrival rate must be positive, got {lambda}"
        );
        assert!(!mus.is_empty(), "a path needs at least one station");
        for &mu in &mus {
            assert!(
                mu.is_finite() && mu > 0.0,
                "service rates must be positive, got {mu}"
            );
        }
        TandemPath { lambda, mus }
    }

    /// A path of `hops` identical stations with service rate `mu`.
    #[must_use]
    pub fn uniform(lambda: f64, hops: u32, mu: f64) -> Self {
        TandemPath::new(lambda, vec![mu; hops as usize])
    }

    /// Arrival rate of the flow.
    #[must_use]
    pub const fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Number of delaying stations.
    #[must_use]
    pub fn hops(&self) -> u32 {
        self.mus.len() as u32
    }

    /// The i-th station as an [`MmInf`] model. By Burke's theorem each
    /// station sees Poisson(λ) input regardless of position.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn station(&self, i: usize) -> MmInf {
        MmInf::new(self.lambda, self.mus[i])
    }

    /// Expected artificial delay over the whole path: `Σ 1/μᵢ`.
    #[must_use]
    pub fn total_mean_delay(&self) -> f64 {
        self.mus.iter().map(|m| 1.0 / m).sum()
    }

    /// Variance of the end-to-end artificial delay: `Σ 1/μᵢ²`.
    #[must_use]
    pub fn total_delay_variance(&self) -> f64 {
        self.mus.iter().map(|m| 1.0 / (m * m)).sum()
    }

    /// Expected total number of packets buffered along the path: `Σ ρᵢ`.
    #[must_use]
    pub fn total_mean_occupancy(&self) -> f64 {
        self.mus.iter().map(|m| self.lambda / m).sum()
    }

    /// End-to-end delay distribution when every station shares one rate.
    ///
    /// Returns `None` if rates differ (use [`TandemPath::delay_hypoexp`]).
    #[must_use]
    pub fn delay_erlang(&self) -> Option<Erlang> {
        let first = self.mus[0];
        if self.mus.iter().all(|&m| (m - first).abs() < 1e-12 * first) {
            Some(Erlang::new(self.hops(), first))
        } else {
            None
        }
    }

    /// End-to-end delay distribution for pairwise-distinct station rates.
    ///
    /// # Panics
    ///
    /// Panics if any two rates coincide.
    #[must_use]
    pub fn delay_hypoexp(&self) -> Hypoexponential {
        Hypoexponential::new(self.mus.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn integrate<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64, n: usize) -> f64 {
        let h = (hi - lo) / n as f64;
        let mut s = 0.5 * (f(lo) + f(hi));
        for i in 1..n {
            s += f(lo + i as f64 * h);
        }
        s * h
    }

    #[test]
    fn erlang_moments() {
        let e = Erlang::new(15, 1.0 / 30.0);
        assert_eq!(e.mean(), 450.0);
        assert_eq!(e.variance(), 15.0 * 900.0);
        assert_eq!(e.shape(), 15);
    }

    #[test]
    fn erlang_pdf_integrates_to_one() {
        let e = Erlang::new(4, 0.5);
        let total = integrate(|x| e.pdf(x), 0.0, 60.0, 20_000);
        assert!((total - 1.0).abs() < 1e-6, "integral {total}");
    }

    #[test]
    fn erlang_cdf_matches_integral() {
        let e = Erlang::new(3, 0.2);
        for &x in &[1.0, 5.0, 15.0, 40.0] {
            let by_integral = integrate(|t| e.pdf(t), 0.0, x, 20_000);
            assert!(
                (e.cdf(x) - by_integral).abs() < 1e-6,
                "x = {x}: {} vs {by_integral}",
                e.cdf(x)
            );
        }
    }

    #[test]
    fn erlang_shape_one_is_exponential() {
        let e = Erlang::new(1, 2.0);
        assert!((e.pdf(0.5) - 2.0 * (-1.0f64).exp()).abs() < 1e-12);
        assert!((e.cdf(0.5) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert_eq!(e.pdf(0.0), 2.0);
        assert_eq!(e.pdf(-1.0), 0.0);
    }

    #[test]
    fn hypoexp_moments_and_density() {
        let h = Hypoexponential::new(vec![1.0, 2.0, 4.0]);
        assert!((h.mean() - (1.0 + 0.5 + 0.25)).abs() < 1e-12);
        assert!((h.variance() - (1.0 + 0.25 + 0.0625)).abs() < 1e-12);
        let total = integrate(|x| h.pdf(x), 0.0, 60.0, 40_000);
        assert!((total - 1.0).abs() < 1e-6, "integral {total}");
    }

    #[test]
    fn hypoexp_cdf_limits() {
        let h = Hypoexponential::new(vec![0.5, 1.5]);
        assert_eq!(h.cdf(0.0), 0.0);
        assert!(h.cdf(100.0) > 0.999999);
        let mut prev = 0.0;
        for i in 1..50 {
            let c = h.cdf(i as f64 * 0.5);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn hypoexp_rejects_repeated_rates() {
        let _ = Hypoexponential::new(vec![1.0, 1.0]);
    }

    #[test]
    fn paper_s1_path_numbers() {
        // Flow S1: h = 15 hops, 1/mu = 30, 1/lambda = 2.
        let path = TandemPath::uniform(0.5, 15, 1.0 / 30.0);
        assert_eq!(path.total_mean_delay(), 450.0);
        // Adding the 15 * tau = 15 transmission delay gives the paper's
        // ~465 end-to-end latency for the unlimited-buffer case.
        assert_eq!(path.total_mean_delay() + 15.0, 465.0);
        // Each of the 15 nodes holds rho = 15 packets on average.
        assert_eq!(path.total_mean_occupancy(), 225.0);
        assert!((path.station(3).mean_occupancy() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_path_has_erlang_delay() {
        let path = TandemPath::uniform(1.0, 5, 0.25);
        let erl = path.delay_erlang().expect("uniform rates");
        assert_eq!(erl.shape(), 5);
        assert_eq!(erl.mean(), 20.0);
    }

    #[test]
    fn mixed_path_uses_hypoexp() {
        let path = TandemPath::new(1.0, vec![0.2, 0.4, 0.8]);
        assert!(path.delay_erlang().is_none());
        let hypo = path.delay_hypoexp();
        assert!((hypo.mean() - path.total_mean_delay()).abs() < 1e-12);
    }

    #[test]
    fn delay_decomposition_preserves_total() {
        // §3.3: decompose a total delay budget across hops arbitrarily —
        // the path mean is invariant.
        let budget = 450.0;
        let even = TandemPath::uniform(0.5, 15, 15.0 / budget);
        let skewed = TandemPath::new(
            0.5,
            (1..=15).map(|i| i as f64 / (budget / 15.0) / 8.0).collect(),
        );
        assert!((even.total_mean_delay() - budget).abs() < 1e-9);
        // Skewed path mean: sum of 8*(budget/15)/i for i in 1..=15.
        let expected: f64 = (1..=15).map(|i| 8.0 * (budget / 15.0) / i as f64).sum();
        assert!((skewed.total_mean_delay() - expected).abs() < 1e-9);
    }
}

//! Goodness-of-fit statistics for validating the queueing laws.
//!
//! Burke's theorem (§4) claims the departure process of a stable
//! birth–death station is Poisson at the arrival rate — i.e. departure
//! inter-arrival times are i.i.d. exponential. These helpers quantify how
//! exponential a sample looks: the Kolmogorov–Smirnov statistic against an
//! arbitrary CDF and the squared coefficient of variation (1 for an
//! exponential).

/// Kolmogorov–Smirnov statistic `sup_x |F̂(x) − F(x)|` of `samples`
/// against the model CDF `cdf`.
///
/// # Panics
///
/// Panics if `samples` is empty or contains NaN.
pub fn ks_statistic<F>(samples: &[f64], cdf: F) -> f64
where
    F: Fn(f64) -> f64,
{
    assert!(!samples.is_empty(), "need at least one sample");
    let mut sorted: Vec<f64> = samples.to_vec();
    assert!(
        sorted.iter().all(|x| !x.is_nan()),
        "samples must not contain NaN"
    );
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let model = cdf(x);
        let emp_hi = (i + 1) as f64 / n;
        let emp_lo = i as f64 / n;
        d = d.max((emp_hi - model).abs()).max((model - emp_lo).abs());
    }
    d
}

/// KS statistic of `samples` against an exponential with rate `rate`.
///
/// # Panics
///
/// Panics if `rate` is non-positive/not finite or `samples` is empty.
#[must_use]
pub fn ks_exponential(samples: &[f64], rate: f64) -> f64 {
    assert!(
        rate.is_finite() && rate > 0.0,
        "rate must be positive, got {rate}"
    );
    ks_statistic(samples, |x| {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-rate * x).exp()
        }
    })
}

/// Critical KS value at significance level ~5% for sample size `n`
/// (asymptotic approximation `1.358/√n`, adequate for n ≳ 35).
#[must_use]
pub fn ks_critical_5pct(n: usize) -> f64 {
    1.358 / (n as f64).sqrt()
}

/// Squared coefficient of variation `Var/Mean²` — equals 1 for an
/// exponential sample, < 1 for more regular processes (e.g. periodic),
/// > 1 for burstier ones.
///
/// # Panics
///
/// Panics if `samples` has fewer than 2 elements or a zero mean.
#[must_use]
pub fn cv_squared(samples: &[f64]) -> f64 {
    assert!(samples.len() >= 2, "need at least two samples");
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    assert!(mean != 0.0, "mean must be non-zero");
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    var / (mean * mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn exp_samples(n: usize, rate: f64, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| -(1.0 - rng.gen::<f64>()).ln() / rate)
            .collect()
    }

    #[test]
    fn exponential_sample_passes_ks() {
        let samples = exp_samples(5_000, 0.5, 1);
        let d = ks_exponential(&samples, 0.5);
        assert!(d < ks_critical_5pct(5_000) * 1.5, "D = {d}");
    }

    #[test]
    fn wrong_rate_fails_ks() {
        let samples = exp_samples(5_000, 0.5, 2);
        let d = ks_exponential(&samples, 2.0);
        assert!(d > 10.0 * ks_critical_5pct(5_000), "D = {d}");
    }

    #[test]
    fn periodic_sample_fails_ks() {
        let samples = vec![2.0; 1000];
        let d = ks_exponential(&samples, 0.5);
        assert!(d > 0.3, "D = {d}");
    }

    #[test]
    fn cv_squared_signatures() {
        let exp = exp_samples(100_000, 1.0, 3);
        assert!((cv_squared(&exp) - 1.0).abs() < 0.05);
        let periodic: Vec<f64> = vec![2.0; 100];
        assert!(cv_squared(&periodic) < 1e-12);
    }

    #[test]
    fn ks_statistic_exact_small_case() {
        // One sample at the model median: D = 0.5.
        let d = ks_statistic(&[0.0], |_| 0.5);
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn critical_value_shrinks_with_n() {
        assert!(ks_critical_5pct(100) > ks_critical_5pct(10_000));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_rejected() {
        let _ = ks_exponential(&[], 1.0);
    }
}

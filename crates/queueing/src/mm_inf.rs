//! The M/M/∞ buffering model (paper §4).
//!
//! A node that delays every arriving packet by an independent exponential
//! time (mean 1/μ) behaves as an M/M/∞ queue: each packet gets its own
//! "variable-delay server". For Poisson input at rate λ the stationary
//! number of buffered packets is Poisson(ρ) with ρ = λ/μ, so the expected
//! buffer occupancy is exactly ρ — the quantitative heart of the paper's
//! privacy/buffer trade-off.

use serde::{Deserialize, Serialize};

use crate::poisson::Poisson;

/// An M/M/∞ station: Poisson arrivals at `lambda`, i.i.d. exponential
/// holding times with rate `mu` (mean delay `1/mu`).
///
/// # Examples
///
/// ```
/// use tempriv_queueing::mm_inf::MmInf;
///
/// // Paper defaults: per-flow lambda = 1/2, per-hop mean delay 30.
/// let station = MmInf::new(0.5, 1.0 / 30.0);
/// assert_eq!(station.utilization(), 15.0);
/// assert_eq!(station.mean_occupancy(), 15.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MmInf {
    lambda: f64,
    mu: f64,
}

impl MmInf {
    /// Creates a station with arrival rate `lambda` and service rate `mu`.
    ///
    /// # Panics
    ///
    /// Panics if either rate is non-positive or not finite.
    #[must_use]
    pub fn new(lambda: f64, mu: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "arrival rate must be positive, got {lambda}"
        );
        assert!(
            mu.is_finite() && mu > 0.0,
            "service rate must be positive, got {mu}"
        );
        MmInf { lambda, mu }
    }

    /// Arrival rate λ.
    #[must_use]
    pub const fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Service rate μ (reciprocal of the mean buffering delay).
    #[must_use]
    pub const fn mu(&self) -> f64 {
        self.mu
    }

    /// Mean buffering delay `1/μ`.
    #[must_use]
    pub fn mean_delay(&self) -> f64 {
        1.0 / self.mu
    }

    /// Utilization factor `ρ = λ/μ`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Expected number of buffered packets, `N̄ = ρ` (paper §4).
    #[must_use]
    pub fn mean_occupancy(&self) -> f64 {
        self.utilization()
    }

    /// Stationary occupancy distribution: Poisson(ρ).
    #[must_use]
    pub fn occupancy(&self) -> Poisson {
        Poisson::new(self.utilization())
    }

    /// `P(N = k)` at stationarity (paper: `p_k = ρᵏ e^{−ρ} / k!`).
    #[must_use]
    pub fn occupancy_pmf(&self, k: u64) -> f64 {
        self.occupancy().pmf(k)
    }

    /// Probability that more than `k` packets are buffered — how often a
    /// finite buffer of size `k` *would* overflow if it were enforced.
    #[must_use]
    pub fn overflow_probability(&self, k: u64) -> f64 {
        1.0 - self.occupancy().cdf(k)
    }

    /// Buffer size needed to hold the stationary backlog with probability
    /// at least `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `(0, 1)`.
    #[must_use]
    pub fn buffer_for_confidence(&self, q: f64) -> u64 {
        self.occupancy().quantile(q)
    }

    /// Departure rate at stationarity. By Burke's theorem the output of a
    /// stable birth–death station is Poisson at the input rate, which is
    /// what lets the paper chain stations into tandem paths and trees.
    #[must_use]
    pub const fn departure_rate(&self) -> f64 {
        self.lambda
    }

    /// Mean occupancy at time `t` after a cold start (empty buffer):
    /// `ρ·(1 − e^{−μt})`. The occupancy of an M/M/∞ station started
    /// empty is Poisson with this time-varying mean — the transient the
    /// finite-run experiments must out-wait before measurements reflect
    /// the stationary law.
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative or not finite.
    #[must_use]
    pub fn transient_mean_occupancy(&self, t: f64) -> f64 {
        assert!(
            t.is_finite() && t >= 0.0,
            "time must be non-negative, got {t}"
        );
        self.utilization() * (1.0 - (-self.mu * t).exp())
    }

    /// Time for the mean occupancy to reach a fraction `frac` of its
    /// stationary value ρ — how long a measurement must warm up.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is not in `(0, 1)`.
    #[must_use]
    pub fn warmup_time(&self, frac: f64) -> f64 {
        assert!(
            frac > 0.0 && frac < 1.0,
            "fraction must be in (0,1), got {frac}"
        );
        -(1.0 - frac).ln() / self.mu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters_utilization() {
        // 1/lambda = 2, 1/mu = 30 => rho = 15.
        let m = MmInf::new(0.5, 1.0 / 30.0);
        assert!((m.utilization() - 15.0).abs() < 1e-12);
        assert!((m.mean_delay() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_pmf_matches_formula() {
        let m = MmInf::new(2.0, 1.0);
        let rho: f64 = 2.0;
        for k in 0..10u64 {
            let manual = rho.powi(k as i32) * (-rho).exp()
                / (1..=k).map(|i| i as f64).product::<f64>().max(1.0);
            assert!((m.occupancy_pmf(k) - manual).abs() < 1e-12, "k = {k}");
        }
    }

    #[test]
    fn overflow_probability_decreases_with_buffer() {
        let m = MmInf::new(1.0, 0.1); // rho = 10
        let mut prev = 1.0;
        for k in 0..40 {
            let p = m.overflow_probability(k);
            assert!(p <= prev);
            prev = p;
        }
        assert!(m.overflow_probability(100) < 1e-12);
    }

    #[test]
    fn buffer_sizing_hits_confidence() {
        let m = MmInf::new(0.5, 1.0 / 30.0); // rho = 15
        let k = m.buffer_for_confidence(0.99);
        assert!(m.occupancy().cdf(k) >= 0.99);
        assert!(m.occupancy().cdf(k - 1) < 0.99);
        // With the Mica-2's ~10 slots, a rho = 15 load overflows almost
        // always — the paper's motivation for RCAD.
        assert!(m.overflow_probability(10) > 0.8);
    }

    #[test]
    fn departure_equals_arrival_rate() {
        let m = MmInf::new(0.7, 0.2);
        assert_eq!(m.departure_rate(), 0.7);
    }

    #[test]
    fn transient_occupancy_relaxes_to_rho() {
        let m = MmInf::new(0.5, 1.0 / 30.0); // rho = 15
        assert_eq!(m.transient_mean_occupancy(0.0), 0.0);
        let half_life = m.warmup_time(0.5);
        assert!((m.transient_mean_occupancy(half_life) - 7.5).abs() < 1e-9);
        assert!(m.transient_mean_occupancy(1e6) > 14.999);
        // Monotone.
        let mut prev = 0.0;
        for i in 1..20 {
            let n = m.transient_mean_occupancy(i as f64 * 10.0);
            assert!(n > prev);
            prev = n;
        }
    }

    #[test]
    fn warmup_time_matches_inverse() {
        let m = MmInf::new(0.5, 0.1);
        let t = m.warmup_time(0.95);
        assert!((m.transient_mean_occupancy(t) - 0.95 * m.utilization()).abs() < 1e-9);
        // 95% warm-up of a 1/mu = 30 station is ~90 time units: the
        // scale the finite paper runs must out-wait.
        let paper = MmInf::new(0.5, 1.0 / 30.0);
        assert!((paper.warmup_time(0.95) - 89.87).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mu_rejected() {
        let _ = MmInf::new(1.0, 0.0);
    }
}

//! Admission control: a bounded queue plus per-tenant quotas.
//!
//! The server admits a *cold* job (one that needs simulation) only while
//! the total number of queued-or-running jobs is below `max_queue` and
//! the submitting tenant holds fewer than `tenant_quota` of them. Warm
//! submissions answered straight from the content-addressed cache do no
//! work, so they bypass admission entirely — a tenant replaying cached
//! sweeps can never starve one submitting fresh work, and vice versa a
//! noisy tenant flooding cold jobs hits its own quota long before the
//! shared queue bound.
//!
//! Rejections map to HTTP `429 Too Many Requests` with a `Retry-After`
//! estimate derived from the current backlog.

use std::collections::HashMap;

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The shared queued-or-running bound is exhausted.
    QueueFull,
    /// The submitting tenant is at its per-tenant quota.
    TenantQuota,
}

impl RejectReason {
    /// Short machine-readable label (used in responses and metrics).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::TenantQuota => "tenant_quota",
        }
    }
}

/// Tracks active (queued + running) cold jobs globally and per tenant.
#[derive(Debug)]
pub struct Admission {
    max_queue: usize,
    tenant_quota: usize,
    active_total: usize,
    per_tenant: HashMap<String, usize>,
}

impl Admission {
    /// A controller with the given shared bound and per-tenant quota.
    #[must_use]
    pub fn new(max_queue: usize, tenant_quota: usize) -> Self {
        Admission {
            max_queue: max_queue.max(1),
            tenant_quota: tenant_quota.max(1),
            active_total: 0,
            per_tenant: HashMap::new(),
        }
    }

    /// Admits one cold job for `tenant`, or says why not. On success the
    /// job counts as active until [`Admission::release`].
    ///
    /// # Errors
    ///
    /// [`RejectReason::QueueFull`] when the shared bound is exhausted,
    /// [`RejectReason::TenantQuota`] when this tenant is at quota.
    pub fn try_admit(&mut self, tenant: &str) -> Result<(), RejectReason> {
        if self.active_total >= self.max_queue {
            return Err(RejectReason::QueueFull);
        }
        let mine = self.per_tenant.get(tenant).copied().unwrap_or(0);
        if mine >= self.tenant_quota {
            return Err(RejectReason::TenantQuota);
        }
        self.active_total += 1;
        *self.per_tenant.entry(tenant.to_string()).or_insert(0) += 1;
        Ok(())
    }

    /// Admits unconditionally — used when rebuilding the queue from a
    /// journal, where refusing previously accepted work would lose it.
    pub fn force_admit(&mut self, tenant: &str) {
        self.active_total += 1;
        *self.per_tenant.entry(tenant.to_string()).or_insert(0) += 1;
    }

    /// Releases one active job of `tenant` (it finished or failed).
    pub fn release(&mut self, tenant: &str) {
        self.active_total = self.active_total.saturating_sub(1);
        if let Some(mine) = self.per_tenant.get_mut(tenant) {
            *mine = mine.saturating_sub(1);
            if *mine == 0 {
                self.per_tenant.remove(tenant);
            }
        }
    }

    /// Active (queued + running) jobs across all tenants.
    #[must_use]
    pub fn active(&self) -> usize {
        self.active_total
    }

    /// Active jobs of one tenant.
    #[must_use]
    pub fn tenant_active(&self, tenant: &str) -> usize {
        self.per_tenant.get(tenant).copied().unwrap_or(0)
    }

    /// The shared queued-or-running bound.
    #[must_use]
    pub fn max_queue(&self) -> usize {
        self.max_queue
    }

    /// A `Retry-After` estimate in whole seconds: how long until backlog
    /// the size of the current one drains through `workers` workers, each
    /// assumed to finish a job in about a second — coarse on purpose
    /// (admission has no latency model), but it scales with the backlog
    /// instead of telling every rejected client the same constant.
    #[must_use]
    pub fn retry_after_s(&self, workers: usize) -> u64 {
        (self.active_total / workers.max(1)).max(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_full_rejects_everyone() {
        let mut adm = Admission::new(2, 10);
        adm.try_admit("a").unwrap();
        adm.try_admit("b").unwrap();
        assert_eq!(adm.try_admit("c"), Err(RejectReason::QueueFull));
        assert_eq!(adm.try_admit("a"), Err(RejectReason::QueueFull));
        adm.release("a");
        assert_eq!(adm.try_admit("c"), Ok(()));
        assert_eq!(adm.active(), 2);
    }

    #[test]
    fn tenant_quota_isolates_a_noisy_tenant() {
        // The noisy tenant saturates its quota; the quiet one is
        // unaffected because the shared queue still has room.
        let mut adm = Admission::new(100, 3);
        for _ in 0..3 {
            adm.try_admit("noisy").unwrap();
        }
        assert_eq!(adm.try_admit("noisy"), Err(RejectReason::TenantQuota));
        assert_eq!(adm.tenant_active("noisy"), 3);
        assert_eq!(adm.try_admit("quiet"), Ok(()), "quiet tenant unaffected");
        assert_eq!(adm.tenant_active("quiet"), 1);
        // Releasing one of the noisy tenant's jobs reopens its quota.
        adm.release("noisy");
        assert_eq!(adm.try_admit("noisy"), Ok(()));
    }

    #[test]
    fn release_of_unknown_tenant_is_harmless() {
        let mut adm = Admission::new(4, 4);
        adm.release("ghost");
        assert_eq!(adm.active(), 0);
        adm.try_admit("a").unwrap();
        adm.release("a");
        adm.release("a");
        assert_eq!(adm.active(), 0);
        assert_eq!(adm.tenant_active("a"), 0);
    }

    #[test]
    fn force_admit_bypasses_both_bounds() {
        let mut adm = Admission::new(1, 1);
        adm.force_admit("t");
        adm.force_admit("t");
        assert_eq!(adm.active(), 2);
        assert_eq!(adm.try_admit("t"), Err(RejectReason::QueueFull));
    }

    #[test]
    fn retry_after_scales_with_backlog() {
        let mut adm = Admission::new(100, 100);
        assert_eq!(adm.retry_after_s(4), 1);
        for _ in 0..40 {
            adm.force_admit("t");
        }
        assert_eq!(adm.retry_after_s(4), 10);
        assert_eq!(adm.retry_after_s(0), 40, "zero workers clamps to one");
    }

    #[test]
    fn bounds_clamp_to_at_least_one() {
        let mut adm = Admission::new(0, 0);
        assert_eq!(adm.max_queue(), 1);
        assert_eq!(adm.try_admit("t"), Ok(()));
        assert_eq!(adm.try_admit("t"), Err(RejectReason::QueueFull));
    }
}

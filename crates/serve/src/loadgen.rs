//! `tempriv bench serve` — a load driver that hammers the serve API with
//! concurrent, multi-tenant, mixed warm/cold submissions and reports
//! latency percentiles, throughput, and cache hit-rate.
//!
//! The driver spawns an in-process server (unless pointed at an external
//! one), then `concurrency` client threads pull submission slots from a
//! shared counter. Each slot maps to one of `distinct` tiny one-point
//! sweeps, so after the first wave most submissions are warm — the
//! realistic mixed regime the cache exists for. Rejected submissions
//! (`429`) honor `Retry-After` (capped) and retry, so admission pressure
//! shows up as latency rather than lost work.

use crate::client::{request, submit_job};
use crate::server::{ServeConfig, Server};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Load-driver knobs (the `tempriv bench serve` flags).
#[derive(Debug, Clone)]
pub struct LoadParams {
    /// Total submissions to issue.
    pub submissions: usize,
    /// Concurrent client threads.
    pub concurrency: usize,
    /// Distinct tenants cycling through submissions.
    pub tenants: usize,
    /// Distinct job specs; submissions beyond this count repeat specs
    /// and (after the first wave) hit the cache.
    pub distinct: usize,
    /// Packets per source for the tiny benchmark sweeps.
    pub packets: u32,
    /// Experiment every spec runs (one-point sweeps).
    pub experiment: String,
    /// External server address; `None` spawns one in-process.
    pub addr: Option<String>,
    /// Worker threads for the in-process server.
    pub server_workers: usize,
}

impl Default for LoadParams {
    fn default() -> Self {
        LoadParams {
            submissions: 2000,
            concurrency: 16,
            tenants: 4,
            distinct: 64,
            packets: 60,
            experiment: "fig3".to_string(),
            addr: None,
            server_workers: 4,
        }
    }
}

/// Latency percentiles over one population, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyMs {
    /// Sample count.
    pub count: usize,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum observed.
    pub max: f64,
}

impl LatencyMs {
    fn from_samples(mut samples: Vec<f64>) -> LatencyMs {
        if samples.is_empty() {
            return LatencyMs {
                count: 0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        samples.sort_by(f64::total_cmp);
        let at = |q: f64| {
            let idx = ((samples.len() - 1) as f64 * q).round() as usize;
            samples[idx]
        };
        LatencyMs {
            count: samples.len(),
            p50: at(0.50),
            p90: at(0.90),
            p99: at(0.99),
            max: *samples.last().expect("non-empty"),
        }
    }
}

/// What one `bench serve` run measured (serialized to
/// `results/BENCH_serve.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// Submissions issued (each retried until accepted).
    pub submissions: usize,
    /// Concurrent client threads.
    pub concurrency: usize,
    /// Distinct tenants.
    pub tenants: usize,
    /// Distinct specs.
    pub distinct_specs: usize,
    /// Experiment used.
    pub experiment: String,
    /// Submissions answered warm (straight from the cache).
    pub warm: usize,
    /// Submissions that queued a simulation.
    pub cold: usize,
    /// `429` rejections absorbed by retries.
    pub rejected_retries: usize,
    /// Jobs that finished in error.
    pub failed: usize,
    /// Wall-clock seconds for the whole run.
    pub elapsed_s: f64,
    /// Accepted submissions per second.
    pub throughput_rps: f64,
    /// POST round-trip latency over every accepted submission.
    pub submit_latency_ms: LatencyMs,
    /// Submit-to-done latency of cold jobs (queue wait + simulation).
    pub cold_complete_ms: LatencyMs,
    /// hits / (hits + misses) reported by the server's `/metrics`.
    pub cache_hit_rate: f64,
    /// Whether a warm resubmission returned bytes identical to the cold
    /// run of the same spec.
    pub warm_bytes_identical: bool,
}

struct Tally {
    warm: usize,
    cold: usize,
    rejected: usize,
    failed: usize,
    submit_ms: Vec<f64>,
    complete_ms: Vec<f64>,
    errors: Vec<String>,
}

/// Runs the load benchmark.
///
/// # Errors
///
/// Returns a message when the server cannot start, a client hits a
/// transport error, or the warm/cold byte-identity check fails to
/// collect both results.
pub fn run_load(params: &LoadParams) -> Result<LoadReport, String> {
    let (addr, handle) = match &params.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let server = Server::bind(ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: params.server_workers.max(1),
                cache_dir: None,
                journal: None,
                max_queue: (params.concurrency * 16).max(64),
                tenant_quota: (params.concurrency * 8).max(32),
            })?;
            let handle = server.spawn();
            (handle.addr.to_string(), Some(handle))
        }
    };

    // Warm/cold byte-identity probe on a spec the storm never touches.
    let probe = spec_json(&params.experiment, params.packets, usize::MAX);
    let cold_bytes = submit_and_fetch(&addr, "probe", &probe)?;
    let warm_bytes = submit_and_fetch(&addr, "probe", &probe)?;
    let warm_bytes_identical = cold_bytes == warm_bytes;

    let next = AtomicUsize::new(0);
    let tally = Mutex::new(Tally {
        warm: 0,
        cold: 0,
        rejected: 0,
        failed: 0,
        submit_ms: Vec::new(),
        complete_ms: Vec::new(),
        errors: Vec::new(),
    });
    let started = Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..params.concurrency.max(1) {
            scope.spawn(|| loop {
                let slot = next.fetch_add(1, Ordering::Relaxed);
                if slot >= params.submissions {
                    return;
                }
                let tenant = format!("t{}", slot % params.tenants.max(1));
                let spec = spec_json(&params.experiment, params.packets, slot % params.distinct);
                match drive_one(&addr, &tenant, &spec) {
                    Ok(one) => {
                        let mut tally = tally.lock().expect("tally lock");
                        if one.warm {
                            tally.warm += 1;
                        } else {
                            tally.cold += 1;
                        }
                        if one.failed {
                            tally.failed += 1;
                        }
                        tally.rejected += one.retries;
                        tally.submit_ms.push(one.submit_ms);
                        if let Some(ms) = one.complete_ms {
                            tally.complete_ms.push(ms);
                        }
                    }
                    Err(message) => {
                        let mut tally = tally.lock().expect("tally lock");
                        tally.errors.push(message);
                    }
                }
            });
        }
    });
    let elapsed_s = started.elapsed().as_secs_f64();

    let tally = tally.into_inner().expect("tally lock");
    if let Some(first) = tally.errors.first() {
        return Err(format!(
            "{} client errors, first: {first}",
            tally.errors.len()
        ));
    }

    let metrics_text = request(&addr, "GET", "/metrics", &[], &[])?.text();
    let cache_hit_rate = parse_gauge(&metrics_text, "tempriv_serve_cache_hit_rate").unwrap_or(0.0);

    if let Some(handle) = handle {
        let _ = request(&addr, "POST", "/v1/shutdown", &[], &[]);
        handle.join();
    }

    Ok(LoadReport {
        submissions: params.submissions,
        concurrency: params.concurrency,
        tenants: params.tenants,
        distinct_specs: params.distinct,
        experiment: params.experiment.clone(),
        warm: tally.warm,
        cold: tally.cold,
        rejected_retries: tally.rejected,
        failed: tally.failed,
        elapsed_s,
        throughput_rps: params.submissions as f64 / elapsed_s.max(1e-9),
        submit_latency_ms: LatencyMs::from_samples(tally.submit_ms),
        cold_complete_ms: LatencyMs::from_samples(tally.complete_ms),
        cache_hit_rate,
        warm_bytes_identical,
    })
}

struct OneSubmission {
    warm: bool,
    failed: bool,
    retries: usize,
    submit_ms: f64,
    complete_ms: Option<f64>,
}

/// Submits one job (retrying through `429`s) and, for cold jobs, polls
/// it to completion.
fn drive_one(addr: &str, tenant: &str, spec: &str) -> Result<OneSubmission, String> {
    let mut retries = 0usize;
    let issued = Instant::now();
    let accepted = loop {
        let started = Instant::now();
        let resp = submit_job(addr, tenant, spec)?;
        match resp.status {
            200 | 202 => break (resp, started.elapsed().as_secs_f64() * 1e3),
            429 => {
                retries += 1;
                let after_s: u64 = resp
                    .header("retry-after")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(1);
                std::thread::sleep(Duration::from_millis((after_s * 1000).min(200)));
            }
            other => return Err(format!("submit returned {other}: {}", resp.text())),
        }
    };
    let (resp, submit_ms) = accepted;
    let body = resp.text();
    let warm = body.contains("\"cached\":true");
    if warm {
        return Ok(OneSubmission {
            warm,
            failed: false,
            retries,
            submit_ms,
            complete_ms: None,
        });
    }
    let id = extract_id(&body).ok_or_else(|| format!("no id in submit response: {body}"))?;
    let failed = loop {
        let status = request(
            addr,
            "GET",
            &format!("/v1/jobs/{id}?wait_ms=5000"),
            &[],
            &[],
        )?;
        let text = status.text();
        if text.contains("\"state\":\"done\"") {
            break !text.contains("\"ok\":true");
        }
    };
    Ok(OneSubmission {
        warm,
        failed,
        retries,
        submit_ms,
        complete_ms: Some(issued.elapsed().as_secs_f64() * 1e3),
    })
}

/// Submits a spec, waits for completion, and returns the raw result
/// bytes from `/v1/jobs/:id/result`.
fn submit_and_fetch(addr: &str, tenant: &str, spec: &str) -> Result<Vec<u8>, String> {
    let resp = submit_job(addr, tenant, spec)?;
    if resp.status != 200 && resp.status != 202 {
        return Err(format!("probe submit returned {}", resp.status));
    }
    let body = resp.text();
    let id = extract_id(&body).ok_or_else(|| format!("no id in submit response: {body}"))?;
    loop {
        let status = request(
            addr,
            "GET",
            &format!("/v1/jobs/{id}?wait_ms=5000"),
            &[],
            &[],
        )?;
        if status.text().contains("\"state\":\"done\"") {
            break;
        }
    }
    let result = request(addr, "GET", &format!("/v1/jobs/{id}/result"), &[], &[])?;
    if result.status != 200 {
        return Err(format!("probe result returned {}", result.status));
    }
    Ok(result.body)
}

/// A tiny one-point sweep spec, varied by `index` so `distinct` of them
/// produce `distinct` different cache keys. `usize::MAX` is reserved for
/// the byte-identity probe.
fn spec_json(experiment: &str, packets: u32, index: usize) -> String {
    let inv_lambda = 2.0 + (index % 97) as f64 * 0.25;
    let seed = 1000 + index as u64 % 9973;
    format!(
        "{{\"experiment\":\"{experiment}\",\"inv_lambdas\":[{inv_lambda}],\
         \"packets_per_source\":{packets},\"seed\":{seed}}}"
    )
}

fn extract_id(body: &str) -> Option<String> {
    let rest = body.split("\"id\":\"").nth(1)?;
    Some(rest.split('"').next()?.to_string())
}

fn parse_gauge(metrics_text: &str, name: &str) -> Option<f64> {
    metrics_text
        .lines()
        .find(|line| line.starts_with(name) && !line.starts_with('#'))
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|raw| raw.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_come_from_sorted_samples() {
        let lat = LatencyMs::from_samples(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(lat.count, 5);
        assert_eq!(lat.p50, 3.0);
        assert_eq!(lat.max, 5.0);
        let empty = LatencyMs::from_samples(Vec::new());
        assert_eq!(empty.count, 0);
    }

    #[test]
    fn gauge_parsing_finds_the_value() {
        let text = "# HELP tempriv_serve_cache_hit_rate x\n\
                    # TYPE tempriv_serve_cache_hit_rate gauge\n\
                    tempriv_serve_cache_hit_rate 0.75\n";
        assert_eq!(
            parse_gauge(text, "tempriv_serve_cache_hit_rate"),
            Some(0.75)
        );
        assert_eq!(parse_gauge(text, "absent"), None);
    }

    #[test]
    fn spec_json_is_distinct_per_index_and_parses() {
        let a = spec_json("fig3", 60, 0);
        let b = spec_json("fig3", 60, 1);
        assert_ne!(a, b);
        let spec = crate::jobs::JobSpec::from_body(a.as_bytes()).unwrap();
        assert_eq!(spec.experiment, "fig3");
        assert_eq!(spec.packets_per_source, 60);
    }

    #[test]
    fn tiny_load_run_end_to_end() {
        // A miniature storm: 24 submissions over 4 distinct specs — the
        // repeats must hit the cache and the report must hold together.
        let params = LoadParams {
            submissions: 24,
            concurrency: 4,
            tenants: 2,
            distinct: 4,
            packets: 30,
            server_workers: 2,
            ..LoadParams::default()
        };
        let report = run_load(&params).unwrap();
        assert_eq!(report.warm + report.cold, 24);
        assert!(report.warm > 0, "repeated specs must hit the cache");
        assert!(report.cache_hit_rate > 0.0);
        assert!(report.warm_bytes_identical);
        assert_eq!(report.failed, 0);
        assert_eq!(report.submit_latency_ms.count, 24);
        assert!(report.throughput_rps > 0.0);
    }
}

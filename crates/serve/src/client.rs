//! A tiny blocking HTTP client for the serve API — enough for the load
//! driver, the CLI, and the end-to-end tests, with no dependencies.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// Numeric status code.
    pub status: u16,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with the given (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one request (`Connection: close`) and reads the full response.
///
/// # Errors
///
/// Returns a message on connect, write, or parse failure.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> Result<ClientResponse, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| format!("set timeout: {e}"))?;
    let mut out = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    out.write_all(head.as_bytes())
        .and_then(|()| out.write_all(body))
        .and_then(|()| out.flush())
        .map_err(|e| format!("send request: {e}"))?;

    read_response(&mut BufReader::new(stream))
}

/// Convenience: `POST` a job spec, returning the response.
///
/// # Errors
///
/// Propagates [`request`] failures.
pub fn submit_job(addr: &str, tenant: &str, spec_json: &str) -> Result<ClientResponse, String> {
    request(
        addr,
        "POST",
        "/v1/jobs",
        &[("Content-Type", "application/json"), ("X-Tenant", tenant)],
        spec_json.as_bytes(),
    )
}

/// Reads an SSE stream to EOF, returning `(event, data)` frames. The
/// serve privacy endpoint closes the connection after its `done` frame,
/// so EOF is the natural end.
///
/// # Errors
///
/// Returns a message on connect/read failure or a non-SSE response.
pub fn read_sse(addr: &str, path: &str) -> Result<Vec<(String, String)>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| format!("set timeout: {e}"))?;
    let mut out = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    write!(
        out,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("send request: {e}"))?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("read status: {e}"))?;
    if !status_line.contains("200") {
        return Err(format!("expected SSE 200, got {}", status_line.trim()));
    }
    // Skip response headers.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            return Err("EOF before SSE body".to_string());
        }
        if line.trim_end_matches(['\r', '\n']).is_empty() {
            break;
        }
    }

    let mut frames = Vec::new();
    let mut event = String::new();
    let mut data = String::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            break;
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            if !event.is_empty() || !data.is_empty() {
                frames.push((std::mem::take(&mut event), std::mem::take(&mut data)));
            }
        } else if let Some(rest) = line.strip_prefix("event: ") {
            event = rest.to_string();
        } else if let Some(rest) = line.strip_prefix("data: ") {
            data = rest.to_string();
        }
    }
    Ok(frames)
}

fn read_response<R: BufRead>(reader: &mut R) -> Result<ClientResponse, String> {
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("read status: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {status_line:?}"))?;

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            return Err("EOF in response headers".to_string());
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    let length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    let mut body = Vec::new();
    match length {
        Some(length) => {
            body.resize(length, 0);
            reader
                .read_exact(&mut body)
                .map_err(|e| format!("read body: {e}"))?;
        }
        None => {
            reader
                .read_to_end(&mut body)
                .map_err(|e| format!("read body: {e}"))?;
        }
    }
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_response() {
        let raw = "HTTP/1.1 429 Too Many Requests\r\n\
                   Content-Type: application/json\r\n\
                   Retry-After: 2\r\n\
                   Content-Length: 16\r\n\r\n\
                   {\"error\":\"full\"}";
        let resp = read_response(&mut BufReader::new(raw.as_bytes())).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.header("retry-after"), Some("2"));
        assert_eq!(resp.header("Retry-After"), Some("2"));
        assert_eq!(resp.text(), "{\"error\":\"full\"}");
    }

    #[test]
    fn missing_content_length_reads_to_eof() {
        let raw = "HTTP/1.1 200 OK\r\n\r\nhello";
        let resp = read_response(&mut BufReader::new(raw.as_bytes())).unwrap();
        assert_eq!(resp.body, b"hello");
    }
}

//! Serve-side metrics: queue depth, cache hit-rate, per-tenant admission
//! counters, and latency histograms, exported as Prometheus text through
//! the repo's [`MetricsRegistry`].
//!
//! The registry wants `&mut self`; the server wraps [`ServeMetrics`] in a
//! `Mutex` and every handler takes it briefly. Per-tenant counters are
//! registered lazily the first time a tenant shows up, following the
//! registry's unquoted label convention (`name{tenant=t0}`).

use std::collections::HashMap;
use tempriv_telemetry::memprof::{self, MemSnapshot};
use tempriv_telemetry::registry::{CounterId, GaugeId, HistogramId, MetricsRegistry};

/// All serve metrics, pre-registered on one registry.
pub struct ServeMetrics {
    registry: MetricsRegistry,
    requests_total: CounterId,
    jobs_completed: CounterId,
    jobs_failed: CounterId,
    cache_hits: CounterId,
    cache_misses: CounterId,
    queue_depth: GaugeId,
    jobs_running: GaugeId,
    cache_hit_rate: GaugeId,
    request_latency: HistogramId,
    job_wall: HistogramId,
    queue_wait: HistogramId,
    mem_live_bytes: GaugeId,
    mem_peak_bytes: GaugeId,
    mem_allocs: GaugeId,
    mem_rss_peak: GaugeId,
    admitted: HashMap<String, CounterId>,
    rejected: HashMap<String, CounterId>,
}

impl ServeMetrics {
    /// Registers every serve metric on a fresh registry.
    #[must_use]
    pub fn new() -> Self {
        let mut registry = MetricsRegistry::new();
        let requests_total = registry.counter(
            "tempriv_serve_requests_total",
            "HTTP requests handled, any endpoint or status",
        );
        let jobs_completed = registry.counter(
            "tempriv_serve_jobs_completed_total",
            "jobs finished with a result",
        );
        let jobs_failed =
            registry.counter("tempriv_serve_jobs_failed_total", "jobs finished in error");
        let cache_hits = registry.counter(
            "tempriv_serve_cache_hits_total",
            "submissions answered from the result cache",
        );
        let cache_misses = registry.counter(
            "tempriv_serve_cache_misses_total",
            "submissions that required simulation",
        );
        let queue_depth = registry.gauge(
            "tempriv_serve_queue_depth",
            "cold jobs waiting for a worker",
        );
        let jobs_running = registry.gauge("tempriv_serve_jobs_running", "jobs executing right now");
        let cache_hit_rate = registry.gauge(
            "tempriv_serve_cache_hit_rate",
            "hits / (hits + misses) since start",
        );
        let request_latency = registry.histogram(
            "tempriv_serve_request_ms",
            "request handling latency in milliseconds",
            0.0,
            500.0,
            100,
        );
        let job_wall = registry.histogram(
            "tempriv_serve_job_wall_ms",
            "job wall-clock time in milliseconds",
            0.0,
            20_000.0,
            200,
        );
        let queue_wait = registry.histogram(
            "tempriv_serve_queue_wait_ms",
            "cold-job queue wait in milliseconds: admission accept to worker pickup",
            0.0,
            10_000.0,
            100,
        );
        let mem_live_bytes = registry.gauge(
            "tempriv_mem_live_bytes",
            "live heap bytes per the counting allocator",
        );
        let mem_peak_bytes = registry.gauge(
            "tempriv_mem_peak_bytes",
            "peak live heap bytes since the counting allocator was enabled",
        );
        let mem_allocs = registry.gauge(
            "tempriv_mem_allocs_total",
            "heap allocations since the counting allocator was enabled",
        );
        let mem_rss_peak = registry.gauge(
            "tempriv_mem_rss_peak_bytes",
            "peak resident set size (VmHWM) of the server process",
        );
        ServeMetrics {
            registry,
            requests_total,
            jobs_completed,
            jobs_failed,
            cache_hits,
            cache_misses,
            queue_depth,
            jobs_running,
            cache_hit_rate,
            request_latency,
            job_wall,
            queue_wait,
            mem_live_bytes,
            mem_peak_bytes,
            mem_allocs,
            mem_rss_peak,
            admitted: HashMap::new(),
            rejected: HashMap::new(),
        }
    }

    /// Records one cold job's queue wait (admission accept to worker
    /// pickup).
    pub fn observe_queue_wait(&mut self, wait_ms: f64) {
        self.registry.observe(self.queue_wait, wait_ms);
    }

    /// Counts one handled request and its latency.
    pub fn observe_request(&mut self, latency_ms: f64) {
        self.registry.inc(self.requests_total, 1);
        self.registry.observe(self.request_latency, latency_ms);
    }

    /// Counts one admitted cold job for `tenant`.
    pub fn admit(&mut self, tenant: &str) {
        let id = lazy_counter(
            &mut self.registry,
            &mut self.admitted,
            "tempriv_serve_admitted_total",
            "cold jobs admitted",
            tenant,
        );
        self.registry.inc(id, 1);
    }

    /// Counts one rejected submission for `tenant`.
    pub fn reject(&mut self, tenant: &str) {
        let id = lazy_counter(
            &mut self.registry,
            &mut self.rejected,
            "tempriv_serve_rejected_total",
            "submissions rejected by admission control",
            tenant,
        );
        self.registry.inc(id, 1);
    }

    /// Counts a warm (cache) or cold (simulated) submission.
    pub fn cache_lookup(&mut self, hit: bool) {
        let id = if hit {
            self.cache_hits
        } else {
            self.cache_misses
        };
        self.registry.inc(id, 1);
        let hits = self.registry.counter_value(self.cache_hits) as f64;
        let total = hits + self.registry.counter_value(self.cache_misses) as f64;
        self.registry.set(self.cache_hit_rate, hits / total);
    }

    /// Counts one finished job and its wall time.
    pub fn job_finished(&mut self, ok: bool, wall_ms: f64) {
        let id = if ok {
            self.jobs_completed
        } else {
            self.jobs_failed
        };
        self.registry.inc(id, 1);
        self.registry.observe(self.job_wall, wall_ms);
    }

    /// Updates the queue-depth and running gauges.
    pub fn set_load(&mut self, queued: usize, running: usize) {
        self.registry.set(self.queue_depth, queued as f64);
        self.registry.set(self.jobs_running, running as f64);
    }

    /// Current hit / (hit + miss) ratio, 0 before any lookup.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        self.registry.gauge_value(self.cache_hit_rate)
    }

    /// Writes the process memory gauges from a counting-allocator
    /// snapshot and the kernel's peak-RSS reading (`None` off-Linux
    /// leaves the RSS gauge at its last value).
    #[allow(clippy::cast_precision_loss)]
    pub fn set_mem(&mut self, snap: &MemSnapshot, peak_rss: Option<u64>) {
        self.registry
            .set(self.mem_live_bytes, snap.live_bytes as f64);
        self.registry
            .set(self.mem_peak_bytes, snap.peak_live_bytes as f64);
        self.registry.set(self.mem_allocs, snap.allocs as f64);
        if let Some(rss) = peak_rss {
            self.registry.set(self.mem_rss_peak, rss as f64);
        }
    }

    /// Refreshes the memory gauges from the live allocator and kernel
    /// state — what the `/metrics` handler calls on every scrape.
    pub fn refresh_mem(&mut self) {
        self.set_mem(&memprof::snapshot(), memprof::peak_rss_bytes());
    }

    /// Renders every metric as Prometheus exposition text.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        self.registry.snapshot().to_prometheus()
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

fn lazy_counter(
    registry: &mut MetricsRegistry,
    cache: &mut HashMap<String, CounterId>,
    family: &str,
    help: &str,
    tenant: &str,
) -> CounterId {
    if let Some(id) = cache.get(tenant) {
        return *id;
    }
    let id = registry.counter(format!("{family}{{tenant={tenant}}}"), help);
    cache.insert(tenant.to_string(), id);
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_tracks_lookups() {
        let mut m = ServeMetrics::new();
        assert_eq!(m.hit_rate(), 0.0);
        m.cache_lookup(false);
        m.cache_lookup(true);
        m.cache_lookup(true);
        assert!((m.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn per_tenant_counters_appear_in_prometheus_text() {
        let mut m = ServeMetrics::new();
        m.admit("noisy");
        m.admit("noisy");
        m.reject("noisy");
        m.admit("quiet");
        let text = m.to_prometheus();
        assert!(text.contains("tempriv_serve_admitted_total{tenant=noisy} 2"));
        assert!(text.contains("tempriv_serve_rejected_total{tenant=noisy} 1"));
        assert!(text.contains("tempriv_serve_admitted_total{tenant=quiet} 1"));
    }

    #[test]
    fn mem_gauges_export_from_snapshot() {
        let mut m = ServeMetrics::new();
        let snap = MemSnapshot {
            allocs: 42,
            deallocs: 40,
            reallocs: 1,
            alloc_bytes: 4096,
            live_bytes: 512,
            peak_live_bytes: 2048,
        };
        m.set_mem(&snap, Some(1 << 20));
        let text = m.to_prometheus();
        assert!(text.contains("tempriv_mem_live_bytes 512"));
        assert!(text.contains("tempriv_mem_peak_bytes 2048"));
        assert!(text.contains("tempriv_mem_allocs_total 42"));
        assert!(text.contains("tempriv_mem_rss_peak_bytes 1048576"));
        // Off-Linux scrapes keep the last RSS reading.
        m.set_mem(&snap, None);
        assert!(m
            .to_prometheus()
            .contains("tempriv_mem_rss_peak_bytes 1048576"));
    }

    #[test]
    fn request_and_job_metrics_export() {
        let mut m = ServeMetrics::new();
        m.observe_request(2.5);
        m.job_finished(true, 40.0);
        m.job_finished(false, 10.0);
        m.set_load(3, 1);
        m.observe_queue_wait(120.0);
        let text = m.to_prometheus();
        assert!(text.contains("tempriv_serve_requests_total 1"));
        assert!(text.contains("tempriv_serve_jobs_completed_total 1"));
        assert!(text.contains("tempriv_serve_jobs_failed_total 1"));
        assert!(text.contains("tempriv_serve_queue_depth 3"));
        assert!(text.contains("tempriv_serve_queue_wait_ms_count 1"));
    }
}

//! Job specs and their execution.
//!
//! A job is one sweep of a named experiment on the paper's Figure-1
//! topology. Clients POST a [`JobSpec`] (partial fields fill in from the
//! smoke defaults), the server canonicalizes it, derives a
//! content-addressed key, and either answers from the shared result
//! cache (warm) or queues the sweep (cold). [`execute`] runs a cold job
//! on a single-worker [`Runtime`] — the serve layer owns concurrency, so
//! the inner sweep must not fan out on its own — and returns the rows as
//! canonical JSON, which is what gets cached and served byte-for-byte.

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tempriv_core::experiment::{
    adversary_panel_sweep_with, delay_ablation_sweep_with, fig2_sweep_with, fig3_sweep_with,
    mix_comparison_sweep_with, victim_ablation_sweep_with, SweepParams,
};
use tempriv_core::telemetry::JobAudit;
use tempriv_net::FlowId;
use tempriv_runtime::{content_digest, Runtime, TelemetrySink};
use tempriv_telemetry::DEFAULT_DIGEST_WINDOW;

/// Experiment names [`execute`] understands.
pub const EXPERIMENTS: &[&str] = &["fig2", "fig3", "adversary", "victim", "delay", "mix"];

/// A sweep submission. Every numeric field is optional in the wire form;
/// zero/empty means "use the smoke default", so a minimal request body is
/// just `{"experiment":"fig2"}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Which sweep to run (one of [`EXPERIMENTS`]).
    pub experiment: String,
    /// Inter-arrival times `1/λ` to sweep (empty = smoke default).
    #[serde(default)]
    pub inv_lambdas: Vec<f64>,
    /// Packets per source per run (0 = smoke default).
    #[serde(default)]
    pub packets_per_source: u32,
    /// Mean artificial delay per hop `1/μ` (0 = smoke default).
    #[serde(default)]
    pub delay_mean: f64,
    /// Buffer slots for limited-buffer scenarios (0 = smoke default).
    #[serde(default)]
    pub capacity: usize,
    /// Master seed (0 = smoke default).
    #[serde(default)]
    pub seed: u64,
    /// Streaming-privacy snapshot interval in events; 0 disables the
    /// observatory (and the job's SSE stream ends immediately).
    #[serde(default)]
    pub privacy_interval: usize,
    /// Enables cross-layer span tracing and the engine self-profiler:
    /// the job records wall-clock spans carrying the request's trace id
    /// plus per-scenario phase breakdowns, exposed at
    /// `GET /v1/jobs/:id/trace`. Part of the canonical spec, so traced
    /// and untraced submissions cache independently.
    #[serde(default)]
    pub trace: bool,
    /// Engine shards per simulation (0 = default 1 = serial). Sharded
    /// jobs run the partitioned parallel engine and cannot attach
    /// per-event instrumentation, so `shards > 1` rejects specs that
    /// also request privacy streaming or tracing. Part of the canonical
    /// spec: sharded and serial submissions cache independently.
    #[serde(default)]
    pub shards: u32,
}

impl JobSpec {
    /// Parses and canonicalizes a request body.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON, an unknown experiment, or
    /// out-of-range parameters.
    pub fn from_body(body: &[u8]) -> Result<JobSpec, String> {
        let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
        let spec: JobSpec =
            serde_json::from_str(text).map_err(|e| format!("malformed job spec: {e}"))?;
        spec.canonicalize()
    }

    /// Fills defaulted fields and validates, producing the canonical form
    /// whose JSON is stable for cache keying.
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown experiment or invalid parameters.
    pub fn canonicalize(mut self) -> Result<JobSpec, String> {
        if !EXPERIMENTS.contains(&self.experiment.as_str()) {
            return Err(format!(
                "unknown experiment {:?} (expected one of {})",
                self.experiment,
                EXPERIMENTS.join(", ")
            ));
        }
        let smoke = SweepParams::smoke();
        if self.inv_lambdas.is_empty() {
            self.inv_lambdas = smoke.inv_lambdas.clone();
        }
        if self.inv_lambdas.iter().any(|x| !x.is_finite() || *x <= 0.0) {
            return Err("inv_lambdas must be positive and finite".to_string());
        }
        if self.inv_lambdas.len() > 64 {
            return Err("at most 64 sweep points per job".to_string());
        }
        if self.packets_per_source == 0 {
            self.packets_per_source = smoke.packets_per_source;
        }
        if self.packets_per_source > 100_000 {
            return Err("packets_per_source too large (max 100000)".to_string());
        }
        if self.delay_mean == 0.0 {
            self.delay_mean = smoke.delay_mean;
        }
        if !self.delay_mean.is_finite() || self.delay_mean < 0.0 {
            return Err("delay_mean must be non-negative and finite".to_string());
        }
        if self.capacity == 0 {
            self.capacity = smoke.capacity;
        }
        if self.seed == 0 {
            self.seed = smoke.seed;
        }
        if self.shards == 0 {
            self.shards = 1;
        }
        if self.shards > 64 {
            return Err("at most 64 engine shards per simulation".to_string());
        }
        if self.shards > 1 && (self.privacy_interval > 0 || self.trace) {
            return Err("sharded jobs cannot attach per-event instrumentation: \
                 drop privacy_interval/trace or set shards to 1"
                .to_string());
        }
        Ok(self)
    }

    /// Canonical JSON of the spec (call on a canonicalized spec).
    #[must_use]
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(self).expect("spec serializes")
    }

    /// The content-addressed key a result of this spec is cached under.
    #[must_use]
    pub fn key(&self) -> String {
        content_digest(format!("serve|{}", self.canonical_json()).as_bytes())
    }

    /// Number of sweep points (= runtime jobs = SSE privacy slots).
    #[must_use]
    pub fn points(&self) -> usize {
        self.inv_lambdas.len()
    }

    /// The core sweep parameters this spec describes.
    #[must_use]
    pub fn sweep_params(&self) -> SweepParams {
        SweepParams {
            inv_lambdas: self.inv_lambdas.clone(),
            packets_per_source: self.packets_per_source,
            delay_mean: self.delay_mean,
            capacity: self.capacity,
            report_flow: FlowId(0),
            seed: self.seed,
        }
    }
}

/// Runs a canonical spec to completion and returns the result rows as
/// canonical JSON. When `sink` is given, the runtime streams per-point
/// privacy blobs into it as the sweep progresses (the SSE endpoint polls
/// the same sink); the sink's privacy interval is set from the spec.
///
/// # Errors
///
/// Returns a message when the runtime cannot be built.
pub fn execute(spec: &JobSpec, sink: Option<Arc<TelemetrySink>>) -> Result<String, String> {
    let mut builder = Runtime::builder().workers(1).sim_shards(spec.shards.max(1));
    if spec.shards > 1 {
        // Canonicalization already rejected instrumented sharded specs;
        // dropping the sink here routes every simulation through the
        // probe-free sharded path.
        let runtime = builder.build()?;
        return execute_rows(spec, &runtime);
    }
    if let Some(sink) = &sink {
        // Every instrumented serve job carries the determinism audit:
        // the digest probe is cheap, observes only, and lets the digest
        // endpoint attest any cold run.
        sink.set_digest_window(DEFAULT_DIGEST_WINDOW);
        sink.set_privacy_interval(spec.privacy_interval);
        if spec.trace {
            sink.set_span_batch(tempriv_telemetry::DEFAULT_PHASE_BATCH as usize);
            // Tracing implies a flight recording so the exported timeline
            // carries packet residences alongside the spans.
            if sink.trace_capacity() == 0 {
                sink.set_trace_capacity(1 << 14);
            }
        }
        builder = builder.telemetry_sink(Arc::clone(sink));
    }
    let runtime = builder.build()?;
    execute_rows(spec, &runtime)
}

/// Runs the spec's sweep on `runtime` and serializes the result rows.
fn execute_rows(spec: &JobSpec, runtime: &Runtime) -> Result<String, String> {
    let params = spec.sweep_params();
    let rows_json = match spec.experiment.as_str() {
        "fig2" => serde_json::to_string(&fig2_sweep_with(&params, runtime)),
        "fig3" => serde_json::to_string(&fig3_sweep_with(&params, runtime)),
        "adversary" => serde_json::to_string(&adversary_panel_sweep_with(&params, runtime)),
        "victim" => serde_json::to_string(&victim_ablation_sweep_with(&params, runtime)),
        "delay" => serde_json::to_string(&delay_ablation_sweep_with(&params, runtime)),
        "mix" => serde_json::to_string(&mix_comparison_sweep_with(&params, runtime)),
        other => return Err(format!("unknown experiment {other:?}")),
    };
    rows_json.map_err(|e| format!("result serialization failed: {e}"))
}

/// The digest summary served at `GET /v1/jobs/:id/digest`: one
/// [`JobAudit`] per sweep point plus a job-level root folding the point
/// roots. The serialized summary is cached next to the result rows, so a
/// warm hit replays the exact bytes — and therefore the exact root — the
/// cold run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobDigest {
    /// One audit record per sweep point, in point order.
    pub points: Vec<JobAudit>,
    /// Digest over the per-point roots, in order.
    pub root: String,
}

/// The cache key a spec's digest summary lives under (parallel to the
/// result rows cached under [`JobSpec::key`]).
#[must_use]
pub fn digest_key(key: &str) -> String {
    format!("audit|{key}")
}

/// Folds the per-point audit blobs a cold run attached to `sink` into
/// the serialized [`JobDigest`]. `None` when any point is missing its
/// blob (the run was not audited).
#[must_use]
pub fn collect_digest(sink: &TelemetrySink, points: usize) -> Option<String> {
    let mut audits = Vec::with_capacity(points);
    for point in 0..points {
        let blob = sink.get_audit(point)?;
        audits.push(serde_json::from_str::<JobAudit>(&blob).ok()?);
    }
    let mut lines = String::new();
    for audit in &audits {
        lines.push_str(&audit.root);
        lines.push('\n');
    }
    let digest = JobDigest {
        points: audits,
        root: content_digest(lines.as_bytes()),
    };
    Some(serde_json::to_string(&digest).expect("digest summary serializes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> JobSpec {
        JobSpec {
            experiment: "fig2".to_string(),
            inv_lambdas: vec![4.0],
            packets_per_source: 40,
            delay_mean: 8.0,
            capacity: 4,
            seed: 7,
            privacy_interval: 0,
            trace: false,
            shards: 1,
        }
        .canonicalize()
        .unwrap()
    }

    #[test]
    fn minimal_body_fills_smoke_defaults() {
        let spec = JobSpec::from_body(b"{\"experiment\":\"fig3\"}").unwrap();
        let smoke = SweepParams::smoke();
        assert_eq!(spec.inv_lambdas, smoke.inv_lambdas);
        assert_eq!(spec.packets_per_source, smoke.packets_per_source);
        assert_eq!(spec.delay_mean, smoke.delay_mean);
        assert_eq!(spec.capacity, smoke.capacity);
        assert_eq!(spec.seed, smoke.seed);
        assert_eq!(spec.privacy_interval, 0);
    }

    #[test]
    fn unknown_experiment_and_bad_params_are_rejected() {
        assert!(JobSpec::from_body(b"{\"experiment\":\"fig9\"}")
            .unwrap_err()
            .contains("unknown experiment"));
        assert!(JobSpec::from_body(b"not json").is_err());
        assert!(
            JobSpec::from_body(b"{\"experiment\":\"fig2\",\"inv_lambdas\":[-1.0]}")
                .unwrap_err()
                .contains("positive")
        );
    }

    #[test]
    fn key_is_stable_and_spec_sensitive() {
        let a = tiny_spec();
        let b = tiny_spec();
        assert_eq!(a.key(), b.key());
        let mut c = tiny_spec();
        c.seed = 8;
        assert_ne!(a.key(), c.key());
        let mut d = tiny_spec();
        d.experiment = "fig3".to_string();
        assert_ne!(a.key(), d.key());
    }

    #[test]
    fn execute_is_deterministic_byte_for_byte() {
        let spec = tiny_spec();
        let first = execute(&spec, None).unwrap();
        let second = execute(&spec, None).unwrap();
        assert_eq!(first, second, "same spec must produce identical bytes");
        assert!(first.starts_with('['), "rows serialize as a JSON array");
    }

    #[test]
    fn trace_flag_changes_the_cache_key() {
        let plain = tiny_spec();
        let mut traced = tiny_spec();
        traced.trace = true;
        assert_ne!(plain.key(), traced.key());
        // Wire form without the field still parses (defaults to off).
        let spec = JobSpec::from_body(b"{\"experiment\":\"fig2\"}").unwrap();
        assert!(!spec.trace);
    }

    #[test]
    fn shards_knob_is_validated_and_cache_keyed() {
        let serial = tiny_spec();
        let mut sharded = tiny_spec();
        sharded.shards = 4;
        let sharded = sharded.canonicalize().unwrap();
        assert_ne!(serial.key(), sharded.key());
        // Wire form without the field still parses (defaults to serial).
        let spec = JobSpec::from_body(b"{\"experiment\":\"fig2\"}").unwrap();
        assert_eq!(spec.shards, 1);
        // Sharded jobs cannot attach per-event instrumentation.
        let mut bad = tiny_spec();
        bad.shards = 2;
        bad.privacy_interval = 50;
        assert!(bad
            .canonicalize()
            .unwrap_err()
            .contains("per-event instrumentation"));
        let err = JobSpec::from_body(b"{\"experiment\":\"fig2\",\"shards\":65}").unwrap_err();
        assert!(err.contains("at most 64"));
    }

    #[test]
    fn sharded_execution_reproduces_serial_rows() {
        let serial = tiny_spec();
        let mut spec = tiny_spec();
        spec.shards = 4;
        let spec = spec.canonicalize().unwrap();
        // The fig2 sweep draws nothing from the shared global streams,
        // so the partitioned engine reproduces the serial rows exactly.
        assert_eq!(
            execute(&spec, None).unwrap(),
            execute(&serial, None).unwrap()
        );
    }

    #[test]
    fn execute_attaches_spans_when_traced() {
        use tempriv_core::telemetry::JobSpans;
        let mut raw = tiny_spec();
        raw.trace = true;
        let spec = raw.canonicalize().unwrap();
        let sink = Arc::new(TelemetrySink::new());
        sink.set_root_ctx(0xabcd, 0xef01);
        execute(&spec, Some(Arc::clone(&sink))).unwrap();
        let blobs = sink.take_all_spans();
        assert_eq!(blobs.len(), spec.points());
        let spans: JobSpans = serde_json::from_str(blobs[0].as_deref().unwrap()).unwrap();
        assert!(!spans.spans.is_empty());
        assert!(!spans.profiles.is_empty());
        // Every span hangs off the request's root trace id.
        let trace_id = spans.spans[0].trace_id;
        assert!(spans.spans.iter().all(|s| s.trace_id == trace_id));
        // Tracing implies flight recording.
        assert!(sink.get_trace(0).is_some());
    }

    #[test]
    fn execute_streams_privacy_blobs_when_asked() {
        let mut raw = tiny_spec();
        raw.privacy_interval = 50;
        let spec = raw.canonicalize().unwrap();
        let sink = Arc::new(TelemetrySink::new());
        execute(&spec, Some(Arc::clone(&sink))).unwrap();
        let blobs = sink.take_all_privacy();
        assert_eq!(blobs.len(), spec.points());
        assert!(blobs[0].as_deref().is_some_and(|b| b.contains("series")));
    }
}

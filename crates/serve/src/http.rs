//! Minimal HTTP/1.1 plumbing over `std::net` — just enough protocol for
//! the serve API and its load driver, with no external dependencies.
//!
//! One request per connection (`Connection: close`): the server parses a
//! request line, headers, and a `Content-Length` body; handlers answer
//! with a [`Response`] or take over the raw stream (the SSE endpoint).
//! Limits are deliberately tight — this is an internal service API, not a
//! general web server.

use std::collections::BTreeMap;
use std::io::{BufRead, Write};

/// Largest accepted request body, in bytes.
pub const MAX_BODY_BYTES: usize = 1 << 20;
/// Largest accepted number of request headers.
pub const MAX_HEADERS: usize = 64;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Path without the query string (e.g. `/v1/jobs/j3`).
    pub path: String,
    /// Decoded query parameters (`?a=1&b=2`), last value wins.
    pub query: BTreeMap<String, String>,
    /// Raw headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Reads one request from `reader`. Returns `Ok(None)` on a clean
    /// EOF before any bytes (client connected and left).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed request lines, oversized
    /// bodies/headers, or truncated input.
    pub fn parse<R: BufRead>(reader: &mut R) -> std::io::Result<Option<Request>> {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        let mut parts = line.split_whitespace();
        let (method, target) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => (m, t),
            _ => return Err(bad_request(&format!("malformed request line: {line:?}"))),
        };
        let method = method.to_ascii_uppercase();
        let (path, raw_query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), q),
            None => (target.to_string(), ""),
        };
        let mut query = BTreeMap::new();
        for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.insert(k.to_string(), v.to_string());
        }

        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                return Err(bad_request("unexpected EOF in headers"));
            }
            let line = line.trim_end_matches(['\r', '\n']);
            if line.is_empty() {
                break;
            }
            if headers.len() >= MAX_HEADERS {
                return Err(bad_request("too many headers"));
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(bad_request(&format!("malformed header: {line:?}")));
            };
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }

        let length: usize = match header_of(&headers, "content-length") {
            Some(raw) => raw.parse().map_err(|_| bad_request("bad content-length"))?,
            None => 0,
        };
        if length > MAX_BODY_BYTES {
            return Err(bad_request("body too large"));
        }
        let mut body = vec![0u8; length];
        reader.read_exact(&mut body)?;
        Ok(Some(Request {
            method,
            path,
            query,
            headers,
            body,
        }))
    }

    /// First header with the given (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        header_of(&self.headers, &name.to_ascii_lowercase())
    }

    /// Query parameter `key` parsed as `T`, with a default when absent.
    ///
    /// # Errors
    ///
    /// Returns a message when the value fails to parse.
    pub fn query_as<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.query.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid query parameter {key}={raw}")),
        }
    }
}

fn header_of<'a>(headers: &'a [(String, String)], lower_name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == lower_name)
        .map(|(_, v)| v.as_str())
}

fn bad_request(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Numeric status code.
    pub status: u16,
    /// Extra headers beyond the defaults (`Content-Type` etc.).
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with the given status, content type, and body.
    #[must_use]
    pub fn new(status: u16, content_type: &str, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: vec![("Content-Type".to_string(), content_type.to_string())],
            body: body.into(),
        }
    }

    /// A `application/json` response.
    #[must_use]
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response::new(status, "application/json", body)
    }

    /// A `text/plain` response.
    #[must_use]
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response::new(status, "text/plain; charset=utf-8", body)
    }

    /// A JSON error envelope: `{"error": <message>}`.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        let body = format!(
            "{{\"error\":{}}}",
            serde_json::to_string(message).expect("strings serialize")
        );
        Response::json(status, body)
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// The standard reason phrase for the status code.
    #[must_use]
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }

    /// Serializes status line, headers, `Content-Length`, and body.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn write_to<W: Write>(&self, out: &mut W) -> std::io::Result<()> {
        write!(out, "HTTP/1.1 {} {}\r\n", self.status, self.reason())?;
        for (name, value) in &self.headers {
            write!(out, "{name}: {value}\r\n")?;
        }
        write!(out, "Content-Length: {}\r\n", self.body.len())?;
        write!(out, "Connection: close\r\n\r\n")?;
        out.write_all(&self.body)?;
        out.flush()
    }
}

/// Writes the response preamble for a Server-Sent Events stream; the
/// caller then writes `event:`/`data:` frames directly.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_sse_preamble<W: Write>(out: &mut W) -> std::io::Result<()> {
    out.write_all(
        b"HTTP/1.1 200 OK\r\n\
          Content-Type: text/event-stream\r\n\
          Cache-Control: no-cache\r\n\
          Connection: close\r\n\r\n",
    )?;
    out.flush()
}

/// Writes one SSE frame (`event: <event>` + one `data:` line). `data`
/// must not contain newlines — serialized JSON never does.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_sse_event<W: Write>(out: &mut W, event: &str, data: &str) -> std::io::Result<()> {
    debug_assert!(!data.contains('\n'), "SSE data must be a single line");
    write!(out, "event: {event}\ndata: {data}\n\n")?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> std::io::Result<Option<Request>> {
        Request::parse(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_post_with_body_and_headers() {
        let req = parse(
            "POST /v1/jobs?wait_ms=50 HTTP/1.1\r\n\
             Host: localhost\r\n\
             X-Tenant: acme\r\n\
             Content-Length: 7\r\n\r\n\
             {\"a\":1}",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.query.get("wait_ms").map(String::as_str), Some("50"));
        assert_eq!(req.header("x-tenant"), Some("acme"));
        assert_eq!(req.header("X-Tenant"), Some("acme"));
        assert_eq!(req.body, b"{\"a\":1}");
        assert_eq!(req.query_as("wait_ms", 0u64), Ok(50));
        assert_eq!(req.query_as("missing", 9u64), Ok(9));
    }

    #[test]
    fn clean_eof_yields_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn malformed_request_line_is_invalid_data() {
        let err = parse("NOT-HTTP\r\n\r\n").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_body_is_rejected() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = parse(&raw).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn response_serializes_with_content_length() {
        let mut buf = Vec::new();
        Response::json(202, "{\"id\":\"j1\"}")
            .with_header("Retry-After", "1")
            .write_to(&mut buf)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 202 Accepted\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"id\":\"j1\"}"));
    }

    #[test]
    fn error_envelope_escapes_the_message() {
        let resp = Response::error(400, "bad \"spec\"");
        assert_eq!(resp.body, b"{\"error\":\"bad \\\"spec\\\"\"}");
    }

    #[test]
    fn sse_frames_are_well_formed() {
        let mut buf = Vec::new();
        write_sse_preamble(&mut buf).unwrap();
        write_sse_event(&mut buf, "point", "{\"i\":0}").unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("Content-Type: text/event-stream"));
        assert!(text.ends_with("event: point\ndata: {\"i\":0}\n\n"));
    }
}

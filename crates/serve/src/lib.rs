//! Multi-tenant simulation-as-a-service for the temporal-privacy suite.
//!
//! This crate turns the deterministic experiment runtime into a
//! long-lived HTTP service (`tempriv serve`): clients POST sweep specs,
//! poll results, and stream per-flow privacy series live over SSE while
//! a sweep runs. The server is std-only — a threaded accept loop and a
//! fixed job-worker pool over `std::net`, consistent with the
//! workspace's vendored-offline dependency policy.
//!
//! The pieces:
//!
//! * [`http`] — minimal HTTP/1.1 request/response plumbing + SSE framing;
//! * [`admission`] — bounded queue + per-tenant quotas (`429` +
//!   `Retry-After` on overflow);
//! * [`journal`] — JSONL lifecycle journal with torn-line repair, so a
//!   killed server resumes its queue exactly;
//! * [`jobs`] — canonical job specs, content-addressed keys, and sweep
//!   execution on the existing runtime;
//! * [`metrics`] — queue/cache/latency metrics exported as Prometheus
//!   text through the telemetry registry;
//! * [`server`] — the accept loop, job store, and endpoint handlers;
//! * [`client`] — a tiny blocking client for the CLI, tests, and bench;
//! * [`loadgen`] — the `tempriv bench serve` load driver.
//!
//! # Endpoints
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /v1/jobs` | submit a sweep (`X-Tenant` header names the tenant) |
//! | `GET /v1/jobs/:id` | status + embedded result (`?wait_ms=` long-polls) |
//! | `GET /v1/jobs/:id/result` | raw result rows, byte-stable |
//! | `GET /v1/jobs/:id/privacy` | SSE stream of per-point privacy series |
//! | `GET /metrics` | Prometheus text exposition |
//! | `GET /healthz` | liveness |
//! | `POST /v1/shutdown` | graceful stop (workers finish in-flight jobs) |

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod admission;
pub mod client;
pub mod http;
pub mod jobs;
pub mod journal;
pub mod loadgen;
pub mod metrics;
pub mod server;

pub use admission::{Admission, RejectReason};
pub use jobs::{execute, JobSpec, EXPERIMENTS};
pub use journal::{ServeEvent, ServeJournal};
pub use loadgen::{run_load, LatencyMs, LoadParams, LoadReport};
pub use metrics::ServeMetrics;
pub use server::{Outcome, ServeConfig, Server, ServerHandle};

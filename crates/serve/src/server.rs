//! The serve core: a threaded HTTP server over the job store.
//!
//! Architecture: one accept loop (thread-per-connection handlers, each
//! request short-lived except the SSE stream), a fixed pool of job
//! workers draining a FIFO queue, and a shared [`ResultCache`] keyed by
//! canonical spec digests. Submissions whose key is already cached are
//! answered synchronously — they never consume a queue slot or tenant
//! quota. Cold jobs are journaled on admission and completion so a
//! killed server rebuilds its exact queue on restart ([`Server::bind`]
//! replays the journal: submitted-without-completed events re-enqueue in
//! sequence order, completed ones become done entries served from the
//! cache).
//!
//! Graceful shutdown (`POST /v1/shutdown`) stops the accept loop and
//! lets workers finish their in-flight job; still-queued jobs stay in
//! the journal for the next start — by design, that is the crash-resume
//! path exercised on every restart.

use crate::admission::Admission;
use crate::http::{write_sse_event, write_sse_preamble, Request, Response};
use crate::jobs::{collect_digest, digest_key, execute, JobSpec};
use crate::journal::{ServeEvent, ServeJournal};
use crate::metrics::ServeMetrics;
use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use tempriv_core::telemetry::{JobSpans, JobTrace};
use tempriv_runtime::{content_digest, ResultCache, TelemetrySink};
use tempriv_telemetry::{chrome_span_events, wrap_chrome_events, SpanRecord, TraceCtx};

/// Server configuration (the `tempriv serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7077` (port 0 = ephemeral).
    pub addr: String,
    /// Job worker threads (0 = none; jobs queue until restart — only
    /// useful in resume tests).
    pub workers: usize,
    /// On-disk result cache directory (`None` = in-memory).
    pub cache_dir: Option<PathBuf>,
    /// Journal path (`None` = no durability; queue dies with the
    /// process).
    pub journal: Option<PathBuf>,
    /// Bound on queued-or-running cold jobs.
    pub max_queue: usize,
    /// Per-tenant bound on queued-or-running cold jobs.
    pub tenant_quota: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7077".to_string(),
            workers: 2,
            cache_dir: None,
            journal: None,
            max_queue: 64,
            tenant_quota: 16,
        }
    }
}

/// A finished job's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Whether the job produced a result.
    pub ok: bool,
    /// Whether the result came from the cache without simulation.
    pub cached: bool,
    /// Wall-clock milliseconds spent.
    pub wall_ms: u64,
    /// Digest of the serialized result (empty on error).
    pub digest: String,
    /// Error message when `ok` is false.
    pub error: Option<String>,
}

#[derive(Debug, Clone, PartialEq)]
enum JobState {
    Queued,
    Running,
    Done(Outcome),
}

struct JobEntry {
    id: String,
    tenant: String,
    key: String,
    spec: JobSpec,
    state: JobState,
    /// Live telemetry sink while (and after) the job runs with a privacy
    /// interval or span tracing; the SSE endpoint polls it and the trace
    /// endpoint reads its span/flight blobs.
    live: Option<Arc<TelemetrySink>>,
    /// The request's trace context, minted at submission when the spec
    /// asks for tracing.
    ctx: Option<TraceCtx>,
    /// When the submission was accepted (request span start).
    submitted_at: Instant,
    /// When a worker picked the job up (queue-wait span end).
    picked_at: Option<Instant>,
    /// When the job finished (request span end).
    done_at: Option<Instant>,
}

struct StoreInner {
    entries: HashMap<String, JobEntry>,
    queue: VecDeque<String>,
    next_seq: u64,
    admission: Admission,
    running: usize,
}

struct ServerState {
    cfg: ServeConfig,
    addr: SocketAddr,
    cache: ResultCache,
    journal: Option<ServeJournal>,
    inner: Mutex<StoreInner>,
    queue_cv: Condvar,
    done_cv: Condvar,
    metrics: Mutex<ServeMetrics>,
    shutdown: AtomicBool,
    /// Server start: the zero point of every exported trace timeline.
    epoch: Instant,
}

/// A bound (not yet running) server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    /// The bound address (useful with ephemeral ports).
    pub addr: SocketAddr,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// Waits for the server to shut down (`POST /v1/shutdown`).
    pub fn join(self) {
        let _ = self.thread.join();
    }
}

impl Server {
    /// Binds the listener, opens cache and journal, and replays the
    /// journal into the queue.
    ///
    /// # Errors
    ///
    /// Returns a message when the address, cache directory, or journal
    /// cannot be opened.
    pub fn bind(cfg: ServeConfig) -> Result<Server, String> {
        // Turn the counting allocator on for the server's lifetime so
        // the /metrics memory gauges read live values (no-op unless the
        // binary installed it as #[global_allocator]).
        tempriv_telemetry::memprof::set_enabled(true);
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("cannot bind {}: {e}", cfg.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("cannot resolve local addr: {e}"))?;
        let cache = match &cfg.cache_dir {
            Some(dir) => ResultCache::on_disk(dir)
                .map_err(|e| format!("cannot open cache dir {}: {e}", dir.display()))?,
            None => ResultCache::in_memory(),
        };

        let mut inner = StoreInner {
            entries: HashMap::new(),
            queue: VecDeque::new(),
            next_seq: 1,
            admission: Admission::new(cfg.max_queue, cfg.tenant_quota),
            running: 0,
        };

        let journal = match &cfg.journal {
            None => None,
            Some(path) => {
                let (journal, events) = ServeJournal::open(path)?;
                replay(&mut inner, &events);
                Some(journal)
            }
        };

        let state = Arc::new(ServerState {
            cfg,
            addr,
            cache,
            journal,
            inner: Mutex::new(inner),
            queue_cv: Condvar::new(),
            done_cv: Condvar::new(),
            metrics: Mutex::new(ServeMetrics::new()),
            shutdown: AtomicBool::new(false),
            epoch: Instant::now(),
        });
        Ok(Server { listener, state })
    }

    /// The bound address.
    ///
    /// # Panics
    ///
    /// Never: the address was resolved at bind time.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Jobs replayed from the journal that are waiting in the queue.
    #[must_use]
    pub fn resumed_queue_len(&self) -> usize {
        self.state.inner.lock().expect("store lock").queue.len()
    }

    /// Runs the accept loop until shutdown; blocks the calling thread.
    pub fn run(self) {
        let state = self.state;
        let workers: Vec<_> = (0..state.cfg.workers)
            .map(|_| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || worker_loop(&state))
            })
            .collect();

        for conn in self.listener.incoming() {
            if state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let state = Arc::clone(&state);
            std::thread::spawn(move || handle_connection(&state, stream));
        }

        // Wake every worker so it observes the shutdown flag.
        state.queue_cv.notify_all();
        for worker in workers {
            let _ = worker.join();
        }
    }

    /// Runs the server on a background thread.
    #[must_use]
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let thread = std::thread::spawn(move || self.run());
        ServerHandle { addr, thread }
    }
}

/// Rebuilds the store from replayed journal events: completed jobs
/// become done entries (results live in the cache), submitted-without-
/// completed jobs re-enter the queue in sequence order with their
/// admission slots re-reserved.
fn replay(inner: &mut StoreInner, events: &[ServeEvent]) {
    for event in events {
        match event {
            ServeEvent::Submitted {
                seq,
                id,
                tenant,
                key,
                spec_json,
            } => {
                let Ok(spec) = serde_json::from_str::<JobSpec>(spec_json) else {
                    continue;
                };
                inner.next_seq = inner.next_seq.max(seq + 1);
                let ctx = trace_ctx_for(&spec, id);
                inner.entries.insert(
                    id.clone(),
                    JobEntry {
                        id: id.clone(),
                        tenant: tenant.clone(),
                        key: key.clone(),
                        spec,
                        state: JobState::Queued,
                        live: None,
                        ctx,
                        submitted_at: Instant::now(),
                        picked_at: None,
                        done_at: None,
                    },
                );
                inner.queue.push_back(id.clone());
                inner.admission.force_admit(tenant);
            }
            ServeEvent::Completed {
                id,
                ok,
                cached,
                wall_ms,
                outcome_digest,
                error,
            } => {
                if let Some(entry) = inner.entries.get_mut(id) {
                    entry.state = JobState::Done(Outcome {
                        ok: *ok,
                        cached: *cached,
                        wall_ms: *wall_ms,
                        digest: outcome_digest.clone(),
                        error: error.clone(),
                    });
                    inner.queue.retain(|queued| queued != id);
                    inner.admission.release(&entry.tenant);
                }
            }
        }
    }
}

/// The deterministic trace context of one submission: derived from the
/// spec seed and the job id, so resubmitting the same id reproduces the
/// same ids end to end. `None` when the spec does not ask for tracing.
fn trace_ctx_for(spec: &JobSpec, id: &str) -> Option<TraceCtx> {
    spec.trace.then(|| TraceCtx::root(spec.seed, id))
}

fn worker_loop(state: &ServerState) {
    loop {
        let id = {
            let mut inner = state.inner.lock().expect("store lock");
            loop {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = inner.queue.pop_front() {
                    break id;
                }
                let (guard, _) = state
                    .queue_cv
                    .wait_timeout(inner, Duration::from_millis(200))
                    .expect("queue wait");
                inner = guard;
            }
        };
        run_job(state, &id);
    }
}

fn run_job(state: &ServerState, id: &str) {
    let started = Instant::now();
    let (spec, key, tenant, sink, queue_wait_ms) = {
        let mut inner = state.inner.lock().expect("store lock");
        let Some(entry) = inner.entries.get_mut(id) else {
            return;
        };
        entry.state = JobState::Running;
        entry.picked_at = Some(started);
        let queue_wait_ms = started
            .saturating_duration_since(entry.submitted_at)
            .as_secs_f64()
            * 1e3;
        // Every cold job runs instrumented: the determinism audit needs
        // a sink even when neither SSE privacy streaming nor span
        // tracing was requested.
        let sink = {
            let sink = Arc::new(TelemetrySink::new());
            if let Some(ctx) = entry.ctx {
                sink.set_root_ctx(ctx.trace_id, ctx.span_id);
            }
            entry.live = Some(Arc::clone(&sink));
            Some(sink)
        };
        let picked = (
            entry.spec.clone(),
            entry.key.clone(),
            entry.tenant.clone(),
            sink,
            queue_wait_ms,
        );
        inner.running += 1;
        picked
    };
    {
        let mut metrics = state.metrics.lock().expect("metrics lock");
        metrics.observe_queue_wait(queue_wait_ms);
    }
    update_load(state);

    // A resumed duplicate (or a concurrent identical submission) may
    // already be cached: serve it without re-simulating.
    let outcome = match state.cache.get(&key) {
        Some(rows) => Outcome {
            ok: true,
            cached: true,
            wall_ms: started.elapsed().as_millis() as u64,
            digest: content_digest(rows.as_bytes()),
            error: None,
        },
        None => match execute(&spec, sink.clone()) {
            Ok(rows) => {
                state.cache.put(&key, &rows);
                // Freeze the cold run's audit digests alongside the
                // rows: a warm hit later serves these exact bytes, so
                // warm and cold digest responses share one root.
                if let Some(sink) = &sink {
                    if let Some(digest) = collect_digest(sink, spec.points()) {
                        state.cache.put(&digest_key(&key), &digest);
                    }
                }
                Outcome {
                    ok: true,
                    cached: false,
                    wall_ms: started.elapsed().as_millis() as u64,
                    digest: content_digest(rows.as_bytes()),
                    error: None,
                }
            }
            Err(message) => Outcome {
                ok: false,
                cached: false,
                wall_ms: started.elapsed().as_millis() as u64,
                digest: String::new(),
                error: Some(message),
            },
        },
    };

    if let Some(journal) = &state.journal {
        let _ = journal.append(&ServeEvent::Completed {
            id: id.to_string(),
            ok: outcome.ok,
            cached: outcome.cached,
            wall_ms: outcome.wall_ms,
            outcome_digest: outcome.digest.clone(),
            error: outcome.error.clone(),
        });
    }
    {
        let mut metrics = state.metrics.lock().expect("metrics lock");
        metrics.job_finished(outcome.ok, outcome.wall_ms as f64);
    }
    {
        let mut inner = state.inner.lock().expect("store lock");
        if let Some(entry) = inner.entries.get_mut(id) {
            entry.state = JobState::Done(outcome);
            entry.done_at = Some(Instant::now());
        }
        inner.running -= 1;
        inner.admission.release(&tenant);
    }
    update_load(state);
    state.done_cv.notify_all();
}

fn update_load(state: &ServerState) {
    let (queued, running) = {
        let inner = state.inner.lock().expect("store lock");
        (inner.queue.len(), inner.running)
    };
    let mut metrics = state.metrics.lock().expect("metrics lock");
    metrics.set_load(queued, running);
}

fn handle_connection(state: &ServerState, stream: TcpStream) {
    let started = Instant::now();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    let request = match Request::parse(&mut reader) {
        Ok(Some(request)) => request,
        Ok(None) => return,
        Err(e) => {
            let _ = Response::error(400, &e.to_string()).write_to(&mut stream);
            return;
        }
    };

    // The SSE endpoint takes over the raw stream; everything else
    // produces a Response.
    if request.method == "GET"
        && request.path.starts_with("/v1/jobs/")
        && request.path.ends_with("/privacy")
    {
        stream_privacy(state, &request, &mut stream);
    } else {
        let response = route(state, &request);
        let _ = response.write_to(&mut stream);
    }
    let mut metrics = state.metrics.lock().expect("metrics lock");
    metrics.observe_request(started.elapsed().as_secs_f64() * 1e3);
}

fn route(state: &ServerState, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::json(200, "{\"status\":\"ok\"}"),
        ("GET", "/metrics") => {
            update_load(state);
            let mut metrics = state.metrics.lock().expect("metrics lock");
            metrics.refresh_mem();
            Response::text(200, metrics.to_prometheus())
        }
        ("POST", "/v1/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            state.queue_cv.notify_all();
            // Poke the accept loop so it observes the flag.
            let _ = TcpStream::connect(state.addr);
            Response::json(200, "{\"status\":\"shutting down\"}")
        }
        ("POST", "/v1/jobs") => submit(state, request),
        ("GET", path) => {
            if let Some(rest) = path.strip_prefix("/v1/jobs/") {
                if let Some(id) = rest.strip_suffix("/result") {
                    return job_result(state, id);
                }
                if let Some(id) = rest.strip_suffix("/trace") {
                    return job_trace(state, id);
                }
                if let Some(id) = rest.strip_suffix("/digest") {
                    return job_digest(state, id);
                }
                if !rest.contains('/') {
                    return job_status(state, rest, request);
                }
            }
            Response::error(404, &format!("no such endpoint: {path}"))
        }
        (method, path) => Response::error(405, &format!("{method} {path} not supported")),
    }
}

/// The `X-Tenant` header, sanitized for use in metric labels.
fn tenant_of(request: &Request) -> String {
    let raw = request.header("x-tenant").unwrap_or("anon");
    let clean: String = raw
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        .take(32)
        .collect();
    if clean.is_empty() {
        "anon".to_string()
    } else {
        clean
    }
}

fn submit(state: &ServerState, request: &Request) -> Response {
    let tenant = tenant_of(request);
    let spec = match JobSpec::from_body(&request.body) {
        Ok(spec) => spec,
        Err(message) => return Response::error(400, &message),
    };
    let key = spec.key();

    // Warm path: the result already exists, so the submission costs no
    // simulation — answer immediately, bypassing admission entirely.
    let warm = state.cache.get(&key).is_some();
    {
        let mut metrics = state.metrics.lock().expect("metrics lock");
        metrics.cache_lookup(warm);
    }
    if warm {
        let digest = state
            .cache
            .get(&key)
            .map(|rows| content_digest(rows.as_bytes()))
            .unwrap_or_default();
        let mut inner = state.inner.lock().expect("store lock");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let id = format!("j{seq}");
        if let Some(journal) = &state.journal {
            let _ = journal.append(&ServeEvent::Submitted {
                seq,
                id: id.clone(),
                tenant: tenant.clone(),
                key: key.clone(),
                spec_json: spec.canonical_json(),
            });
            let _ = journal.append(&ServeEvent::Completed {
                id: id.clone(),
                ok: true,
                cached: true,
                wall_ms: 0,
                outcome_digest: digest.clone(),
                error: None,
            });
        }
        let ctx = trace_ctx_for(&spec, &id);
        let now = Instant::now();
        inner.entries.insert(
            id.clone(),
            JobEntry {
                id: id.clone(),
                tenant,
                key,
                spec,
                state: JobState::Done(Outcome {
                    ok: true,
                    cached: true,
                    wall_ms: 0,
                    digest,
                    error: None,
                }),
                live: None,
                ctx,
                submitted_at: now,
                picked_at: None,
                done_at: Some(now),
            },
        );
        return Response::json(
            200,
            format!("{{\"id\":\"{id}\",\"state\":\"done\",\"cached\":true}}"),
        );
    }

    // Cold path: must pass admission, then queue + journal.
    let mut inner = state.inner.lock().expect("store lock");
    if let Err(reason) = inner.admission.try_admit(&tenant) {
        let retry = inner.admission.retry_after_s(state.cfg.workers);
        drop(inner);
        let mut metrics = state.metrics.lock().expect("metrics lock");
        metrics.reject(&tenant);
        return Response::error(429, &format!("admission rejected: {}", reason.label()))
            .with_header("Retry-After", &retry.to_string());
    }
    let seq = inner.next_seq;
    inner.next_seq += 1;
    let id = format!("j{seq}");
    if let Some(journal) = &state.journal {
        let _ = journal.append(&ServeEvent::Submitted {
            seq,
            id: id.clone(),
            tenant: tenant.clone(),
            key: key.clone(),
            spec_json: spec.canonical_json(),
        });
    }
    let ctx = trace_ctx_for(&spec, &id);
    inner.entries.insert(
        id.clone(),
        JobEntry {
            id: id.clone(),
            tenant: tenant.clone(),
            key,
            spec,
            state: JobState::Queued,
            live: None,
            ctx,
            submitted_at: Instant::now(),
            picked_at: None,
            done_at: None,
        },
    );
    inner.queue.push_back(id.clone());
    drop(inner);
    state.queue_cv.notify_all();
    {
        let mut metrics = state.metrics.lock().expect("metrics lock");
        metrics.admit(&tenant);
    }
    update_load(state);
    Response::json(
        202,
        format!("{{\"id\":\"{id}\",\"state\":\"queued\",\"cached\":false}}"),
    )
}

fn job_status(state: &ServerState, id: &str, request: &Request) -> Response {
    let wait_ms = match request.query_as("wait_ms", 0u64) {
        Ok(ms) => ms.min(30_000),
        Err(message) => return Response::error(400, &message),
    };
    let deadline = Instant::now() + Duration::from_millis(wait_ms);
    let mut inner = state.inner.lock().expect("store lock");
    loop {
        let Some(entry) = inner.entries.get(id) else {
            return Response::error(404, &format!("no such job: {id}"));
        };
        match &entry.state {
            JobState::Done(outcome) => {
                let result = if outcome.ok {
                    state.cache.get(&entry.key)
                } else {
                    None
                };
                return Response::json(200, status_json(entry, outcome, result.as_deref()));
            }
            state_now => {
                let label = match state_now {
                    JobState::Queued => "queued",
                    JobState::Running => "running",
                    JobState::Done(_) => unreachable!(),
                };
                let now = Instant::now();
                if now >= deadline {
                    return Response::json(
                        200,
                        format!(
                            "{{\"id\":\"{}\",\"state\":\"{label}\",\"cached\":false}}",
                            entry.id
                        ),
                    );
                }
                let (guard, _) = state
                    .done_cv
                    .wait_timeout(inner, deadline - now)
                    .expect("done wait");
                inner = guard;
            }
        }
    }
}

fn status_json(entry: &JobEntry, outcome: &Outcome, result: Option<&str>) -> String {
    let mut out = format!(
        "{{\"id\":\"{}\",\"state\":\"done\",\"ok\":{},\"cached\":{},\
         \"wall_ms\":{},\"digest\":\"{}\"",
        entry.id, outcome.ok, outcome.cached, outcome.wall_ms, outcome.digest
    );
    if let Some(error) = &outcome.error {
        out.push_str(",\"error\":");
        out.push_str(&serde_json::to_string(error).expect("string serializes"));
    }
    match result {
        // The raw cached bytes are embedded verbatim: warm and cold
        // responses of the same spec embed identical result bytes.
        Some(rows) => {
            out.push_str(",\"result\":");
            out.push_str(rows);
        }
        None if outcome.ok => out.push_str(",\"result\":null"),
        None => {}
    }
    out.push('}');
    out
}

/// Serves the determinism-audit digest summary a cold run froze next to
/// its result rows. Warm submissions of the same spec share the cache
/// key, so they return the byte-identical summary — and root — the cold
/// run produced.
fn job_digest(state: &ServerState, id: &str) -> Response {
    let inner = state.inner.lock().expect("store lock");
    let Some(entry) = inner.entries.get(id) else {
        return Response::error(404, &format!("no such job: {id}"));
    };
    match &entry.state {
        JobState::Done(outcome) if outcome.ok => match state.cache.get(&digest_key(&entry.key)) {
            Some(digest) => Response::json(200, digest),
            None => Response::error(
                404,
                "no digest recorded for this job (result predates the audit)",
            ),
        },
        JobState::Done(outcome) => {
            Response::error(404, outcome.error.as_deref().unwrap_or("job failed"))
        }
        _ => Response::error(404, &format!("job {id} not finished")),
    }
}

fn job_result(state: &ServerState, id: &str) -> Response {
    let inner = state.inner.lock().expect("store lock");
    let Some(entry) = inner.entries.get(id) else {
        return Response::error(404, &format!("no such job: {id}"));
    };
    match &entry.state {
        JobState::Done(outcome) if outcome.ok => match state.cache.get(&entry.key) {
            Some(rows) => Response::json(200, rows),
            None => Response::error(404, "result evicted from cache"),
        },
        JobState::Done(outcome) => {
            Response::error(404, outcome.error.as_deref().unwrap_or("job failed"))
        }
        _ => Response::error(404, &format!("job {id} not finished")),
    }
}

/// Child index reserved for the queue-wait span, outside the runtime's
/// job-index range (jobs are capped at 64 sweep points).
const QUEUE_SPAN_CHILD: u64 = 1 << 32;

/// Exports one traced job's end-to-end Chrome trace: the serve request
/// span, its queue-wait child, the runtime job/scenario spans and engine
/// phase bands read from the job's sink, and the flight recorder's
/// packet residences — one file, one trace id, loadable in Perfetto.
///
/// Wall-clock spans are rebased onto the server epoch so every layer
/// shares one clock; flight events keep their simulation-time axis on
/// separate process rows.
#[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
fn job_trace(state: &ServerState, id: &str) -> Response {
    let (ctx, points, submitted_at, picked_at, done_at, sink) = {
        let inner = state.inner.lock().expect("store lock");
        let Some(entry) = inner.entries.get(id) else {
            return Response::error(404, &format!("no such job: {id}"));
        };
        let Some(ctx) = entry.ctx else {
            return Response::error(
                404,
                &format!("job {id} was not submitted with \"trace\":true"),
            );
        };
        (
            ctx,
            entry.spec.points(),
            entry.submitted_at,
            entry.picked_at,
            entry.done_at,
            entry.live.clone(),
        )
    };
    let epoch = state.epoch;
    let end = done_at.unwrap_or_else(Instant::now);
    let mut spans = vec![SpanRecord {
        trace_id: ctx.trace_id,
        span_id: ctx.span_id,
        parent_id: 0,
        name: format!("POST /v1/jobs {id}"),
        layer: "serve".to_string(),
        start_us: submitted_at.saturating_duration_since(epoch).as_micros() as u64,
        dur_us: end.saturating_duration_since(submitted_at).as_micros() as u64,
    }];
    if let Some(picked) = picked_at {
        let queue_ctx = ctx.child(QUEUE_SPAN_CHILD);
        spans.push(SpanRecord {
            trace_id: ctx.trace_id,
            span_id: queue_ctx.span_id,
            parent_id: ctx.span_id,
            name: "queue wait".to_string(),
            layer: "queue".to_string(),
            start_us: submitted_at.saturating_duration_since(epoch).as_micros() as u64,
            dur_us: picked.saturating_duration_since(submitted_at).as_micros() as u64,
        });
    }
    let mut phase_events = Vec::new();
    let mut flight_events = Vec::new();
    let mut phase_tid = 0u64;
    if let Some(sink) = &sink {
        // Job-local timestamps count from the sink's epoch, which the
        // worker created at pickup: rebase them onto the server epoch.
        let offset = picked_at.map_or(0i64, |p| {
            p.saturating_duration_since(epoch).as_micros() as i64
        });
        for point in 0..points {
            if let Some(blob) = sink.get_spans(point) {
                if let Ok(job) = serde_json::from_str::<JobSpans>(&blob) {
                    for span in &job.spans {
                        let start = (span.start_us as i64 + offset).max(0) as u64;
                        spans.push(SpanRecord {
                            start_us: start,
                            ..span.clone()
                        });
                    }
                    // Profile i belongs to scenario span i (spans[0] is
                    // the job span): anchor its phase bands there.
                    for (i, profile) in job.profiles.iter().enumerate() {
                        let anchor = job
                            .spans
                            .get(i + 1)
                            .map_or(0, |s| (s.start_us as i64 + offset).max(0) as u64);
                        phase_events.extend(profile.profile.chrome_phase_events(
                            &format!("point {point}: {}", profile.label),
                            anchor,
                            phase_tid,
                        ));
                        phase_tid += 1;
                    }
                }
            }
            if let Some(blob) = sink.get_trace(point) {
                if let Ok(trace) = serde_json::from_str::<JobTrace>(&blob) {
                    for scenario in &trace.scenarios {
                        flight_events.extend(scenario.log.chrome_trace_events());
                    }
                }
            }
        }
    }
    let mut events = chrome_span_events(&spans, 0);
    events.extend(phase_events);
    events.extend(flight_events);
    Response::json(200, wrap_chrome_events(&events))
}

/// Streams per-sweep-point privacy blobs as SSE `point` events while the
/// job runs, then a final `done` event. Jobs without a privacy interval
/// (or answered from cache) go straight to `done`.
fn stream_privacy(state: &ServerState, request: &Request, stream: &mut TcpStream) {
    let id = request
        .path
        .strip_prefix("/v1/jobs/")
        .and_then(|rest| rest.strip_suffix("/privacy"))
        .unwrap_or_default()
        .to_string();
    {
        let inner = state.inner.lock().expect("store lock");
        if !inner.entries.contains_key(&id) {
            let _ = Response::error(404, &format!("no such job: {id}")).write_to(stream);
            return;
        }
    }
    if write_sse_preamble(stream).is_err() {
        return;
    }

    let mut next_point = 0usize;
    loop {
        let (sink, done, points) = {
            let inner = state.inner.lock().expect("store lock");
            let Some(entry) = inner.entries.get(&id) else {
                return;
            };
            (
                entry.live.clone(),
                matches!(entry.state, JobState::Done(_)),
                entry.spec.points(),
            )
        };
        if let Some(sink) = &sink {
            while next_point < points {
                let Some(blob) = sink.get_privacy(next_point) else {
                    break;
                };
                let frame = format!("{{\"point\":{next_point},\"privacy\":{blob}}}");
                if write_sse_event(stream, "point", &frame).is_err() {
                    return;
                }
                next_point += 1;
            }
        }
        if done {
            let payload = {
                let inner = state.inner.lock().expect("store lock");
                match inner.entries.get(&id).map(|e| &e.state) {
                    Some(JobState::Done(outcome)) => format!(
                        "{{\"ok\":{},\"cached\":{},\"points\":{next_point}}}",
                        outcome.ok, outcome.cached
                    ),
                    _ => "{\"ok\":false}".to_string(),
                }
            };
            let _ = write_sse_event(stream, "done", &payload);
            let _ = stream.flush();
            return;
        }
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

//! The serve journal: a JSONL record of every accepted and finished job.
//!
//! The server appends one [`ServeEvent::Submitted`] line the moment a
//! cold job is admitted and one [`ServeEvent::Completed`] line when it
//! finishes (or fails). Each line is serialized in full and handed to the
//! OS in a single `write_all` + flush, so a live reader never sees a
//! partial record; only a hard kill mid-write can tear the final line.
//! On startup [`ServeJournal::open`] replays the file, *repairs* a torn
//! final line by truncating it away, and reports the replayed events so
//! the server can rebuild its queue exactly: submitted-but-not-completed
//! jobs are re-enqueued, completed ones are answered from the cache.

use serde::{Deserialize, Serialize};
use std::fs::OpenOptions;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// First line of a serve journal, identifying the format.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeHeader {
    /// Format marker, always `"tempriv-serve"`.
    pub format: String,
    /// Journal schema version.
    pub version: u32,
}

impl ServeHeader {
    fn current() -> Self {
        ServeHeader {
            format: "tempriv-serve".to_string(),
            version: 1,
        }
    }
}

/// One journaled lifecycle event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServeEvent {
    /// A cold job was admitted into the queue.
    Submitted {
        /// Monotonic submission sequence number (also orders resume).
        seq: u64,
        /// Public job id (`j<seq>`).
        id: String,
        /// Submitting tenant (`X-Tenant` header, default `anon`).
        tenant: String,
        /// Content-addressed cache key of the job spec.
        key: String,
        /// Canonical spec JSON, verbatim — enough to re-run the job.
        spec_json: String,
    },
    /// A job left the queue with a result (or an error).
    Completed {
        /// Public job id this event resolves.
        id: String,
        /// Whether the job produced a result.
        ok: bool,
        /// Whether the result came from the cache without simulation.
        cached: bool,
        /// Wall-clock milliseconds spent on the job.
        wall_ms: u64,
        /// Digest of the serialized result (empty when `ok` is false).
        outcome_digest: String,
        /// Error message when `ok` is false.
        error: Option<String>,
    },
}

/// Append-only journal writer with crash-replay support.
///
/// Thread-safe (`&self` appends); dropping it flushes any buffered bytes
/// so an unwinding worker still lands accepted records.
#[derive(Debug)]
pub struct ServeJournal {
    file: Mutex<BufWriter<std::fs::File>>,
    path: PathBuf,
}

impl ServeJournal {
    /// Opens (or creates) the journal at `path`, returning the writer and
    /// every intact event already on disk, in file order.
    ///
    /// A torn final line — the signature of a hard kill mid-write — is
    /// repaired by truncating the file back to the last complete line
    /// before reopening it for append, so the next writer never extends a
    /// broken record.
    ///
    /// # Errors
    ///
    /// Returns a message when the file cannot be read/created or its
    /// header line is corrupt (a torn *event* line is repaired, a corrupt
    /// header is fatal: the queue state would be meaningless).
    pub fn open(path: impl Into<PathBuf>) -> Result<(Self, Vec<ServeEvent>), String> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create journal directory: {e}"))?;
            }
        }

        let mut events = Vec::new();
        let mut fresh = true;
        if path.exists() {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
            if !text.trim().is_empty() {
                fresh = false;
                let mut good_bytes = 0usize;
                let mut lines = split_lines(&text);
                let (header_line, header_len) = lines
                    .next()
                    .ok_or_else(|| format!("journal {} is empty", path.display()))?;
                let header: ServeHeader = serde_json::from_str(header_line)
                    .map_err(|e| format!("journal {} has a corrupt header: {e}", path.display()))?;
                if header.format != "tempriv-serve" {
                    return Err(format!(
                        "journal {} has unknown format {:?}",
                        path.display(),
                        header.format
                    ));
                }
                good_bytes += header_len;
                for (line, len) in lines {
                    match serde_json::from_str::<ServeEvent>(line) {
                        Ok(event) => {
                            events.push(event);
                            good_bytes += len;
                        }
                        // Torn trailing line from a hard kill: stop here;
                        // everything after the last good line is cut off
                        // below so appends start on a clean boundary.
                        Err(_) => break,
                    }
                }
                if good_bytes < text.len() {
                    let file = OpenOptions::new()
                        .write(true)
                        .open(&path)
                        .map_err(|e| format!("cannot repair journal {}: {e}", path.display()))?;
                    file.set_len(good_bytes as u64)
                        .map_err(|e| format!("cannot truncate journal {}: {e}", path.display()))?;
                }
            }
        }

        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("cannot open journal {}: {e}", path.display()))?;
        let journal = ServeJournal {
            file: Mutex::new(BufWriter::new(file)),
            path,
        };
        if fresh {
            journal
                .write_line(&serde_json::to_string(&ServeHeader::current()).expect("header"))
                .map_err(|e| format!("cannot write journal header: {e}"))?;
        }
        Ok((journal, events))
    }

    /// Appends one event and flushes it to disk.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the line cannot be written.
    pub fn append(&self, event: &ServeEvent) -> std::io::Result<()> {
        self.write_line(&serde_json::to_string(event).expect("event serializes"))
    }

    fn write_line(&self, line: &str) -> std::io::Result<()> {
        let mut bytes = line.as_bytes().to_vec();
        bytes.push(b'\n');
        let mut file = self.file.lock().expect("journal lock");
        file.write_all(&bytes)?;
        file.flush()
    }

    /// Where this journal lives.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for ServeJournal {
    fn drop(&mut self) {
        // Best-effort: every append already flushes, this catches a
        // future edit that buffers and an unwind through a worker.
        if let Ok(mut file) = self.file.lock() {
            let _ = file.flush();
        }
    }
}

/// Splits `text` into `(line, byte_length_including_newline)` pairs so the
/// repair path knows exactly how many bytes the good prefix occupies.
fn split_lines(text: &str) -> impl Iterator<Item = (&str, usize)> {
    let mut rest = text;
    std::iter::from_fn(move || {
        if rest.is_empty() {
            return None;
        }
        match rest.find('\n') {
            Some(pos) => {
                let (line, tail) = rest.split_at(pos + 1);
                rest = tail;
                Some((line.trim_end_matches(['\r', '\n']), line.len()))
            }
            None => {
                let line = rest;
                rest = "";
                Some((line, line.len()))
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submitted(seq: u64) -> ServeEvent {
        ServeEvent::Submitted {
            seq,
            id: format!("j{seq}"),
            tenant: "t0".to_string(),
            key: format!("k{seq}"),
            spec_json: "{\"experiment\":\"fig1\"}".to_string(),
        }
    }

    fn completed(seq: u64) -> ServeEvent {
        ServeEvent::Completed {
            id: format!("j{seq}"),
            ok: true,
            cached: false,
            wall_ms: 3,
            outcome_digest: "ab".to_string(),
            error: None,
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tempriv_serve_journal_{name}.jsonl"))
    }

    #[test]
    fn events_round_trip_across_reopen() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let (journal, replay) = ServeJournal::open(&path).unwrap();
        assert!(replay.is_empty());
        journal.append(&submitted(1)).unwrap();
        journal.append(&completed(1)).unwrap();
        journal.append(&submitted(2)).unwrap();
        drop(journal);

        let (_journal, replay) = ServeJournal::open(&path).unwrap();
        assert_eq!(replay, vec![submitted(1), completed(1), submitted(2)]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_repaired_and_appends_stay_clean() {
        // The satellite fixture: a hard kill leaves a half-written event;
        // reopening must drop it AND the next append must not produce a
        // frankenline glued onto the torn bytes.
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let (journal, _) = ServeJournal::open(&path).unwrap();
        journal.append(&submitted(1)).unwrap();
        drop(journal);

        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"Submitted\":{\"seq\":2,\"id\":\"j2\",\"ten");
        std::fs::write(&path, &text).unwrap();

        let (journal, replay) = ServeJournal::open(&path).unwrap();
        assert_eq!(replay, vec![submitted(1)], "torn line dropped");
        journal.append(&submitted(3)).unwrap();
        drop(journal);

        // The file must now be three clean lines: header, j1, j3.
        let (_journal, replay) = ServeJournal::open(&path).unwrap();
        assert_eq!(replay, vec![submitted(1), submitted(3)]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_header_is_fatal() {
        let path = temp_path("bad_header");
        std::fs::write(&path, "{\"format\":").unwrap();
        assert!(ServeJournal::open(&path).unwrap_err().contains("header"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unknown_format_is_rejected() {
        let path = temp_path("bad_format");
        std::fs::write(&path, "{\"format\":\"other\",\"version\":1}\n").unwrap();
        assert!(ServeJournal::open(&path).unwrap_err().contains("format"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn completed_with_error_round_trips() {
        let event = ServeEvent::Completed {
            id: "j9".to_string(),
            ok: false,
            cached: false,
            wall_ms: 1,
            outcome_digest: String::new(),
            error: Some("unknown experiment".to_string()),
        };
        let line = serde_json::to_string(&event).unwrap();
        let back: ServeEvent = serde_json::from_str(&line).unwrap();
        assert_eq!(back, event);
    }
}

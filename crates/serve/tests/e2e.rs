//! End-to-end serve tests over real sockets: cold/warm byte identity,
//! live SSE privacy streaming, admission control over HTTP, and
//! kill-and-restart queue resume from the journal.

use tempriv_serve::client::{read_sse, request, submit_job};
use tempriv_serve::journal::{ServeEvent, ServeJournal};
use tempriv_serve::server::{ServeConfig, Server};

/// A tiny Figure-1-topology job (one sweep point, few packets).
fn tiny_spec(seed: u64) -> String {
    format!(
        "{{\"experiment\":\"fig2\",\"inv_lambdas\":[4.0],\
         \"packets_per_source\":40,\"seed\":{seed}}}"
    )
}

fn spawn_server(cfg: ServeConfig) -> (String, tempriv_serve::server::ServerHandle) {
    let server = Server::bind(cfg).expect("bind");
    let handle = server.spawn();
    (handle.addr.to_string(), handle)
}

fn ephemeral(cfg_mut: impl FnOnce(&mut ServeConfig)) -> ServeConfig {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    };
    cfg_mut(&mut cfg);
    cfg
}

fn wait_done(addr: &str, id: &str) -> String {
    loop {
        let resp = request(
            addr,
            "GET",
            &format!("/v1/jobs/{id}?wait_ms=5000"),
            &[],
            &[],
        )
        .expect("status request");
        let text = resp.text();
        if text.contains("\"state\":\"done\"") {
            return text;
        }
    }
}

fn shutdown(addr: &str, handle: tempriv_serve::server::ServerHandle) {
    let _ = request(addr, "POST", "/v1/shutdown", &[], &[]);
    handle.join();
}

#[test]
fn smoke_cold_then_warm_is_byte_identical_and_metered() {
    let (addr, handle) = spawn_server(ephemeral(|_| {}));

    let health = request(&addr, "GET", "/healthz", &[], &[]).unwrap();
    assert_eq!(health.status, 200);
    assert!(health.text().contains("ok"));

    // Cold submission: queued, then done with cached=false.
    let cold = submit_job(&addr, "acme", &tiny_spec(11)).unwrap();
    assert_eq!(cold.status, 202, "cold submission queues: {}", cold.text());
    let cold_body = cold.text();
    assert!(cold_body.contains("\"cached\":false"));
    let cold_id = extract_id(&cold_body);
    let cold_status = wait_done(&addr, &cold_id);
    assert!(cold_status.contains("\"ok\":true"));
    assert!(cold_status.contains("\"cached\":false"));
    let cold_result = request(
        &addr,
        "GET",
        &format!("/v1/jobs/{cold_id}/result"),
        &[],
        &[],
    )
    .unwrap();
    assert_eq!(cold_result.status, 200);

    // Warm submission of the same spec: answered synchronously from the
    // cache, byte-identical result.
    let warm = submit_job(&addr, "acme", &tiny_spec(11)).unwrap();
    assert_eq!(warm.status, 200, "warm submission: {}", warm.text());
    let warm_body = warm.text();
    assert!(warm_body.contains("\"cached\":true"));
    let warm_id = extract_id(&warm_body);
    let warm_result = request(
        &addr,
        "GET",
        &format!("/v1/jobs/{warm_id}/result"),
        &[],
        &[],
    )
    .unwrap();
    assert_eq!(
        warm_result.body, cold_result.body,
        "warm result must be byte-identical to the cold run"
    );

    // /metrics shows the hit.
    let metrics = request(&addr, "GET", "/metrics", &[], &[]).unwrap().text();
    assert!(
        metrics.contains("tempriv_serve_cache_hits_total 1"),
        "{metrics}"
    );
    assert!(metrics.contains("tempriv_serve_cache_misses_total 1"));
    let hit_rate_line = metrics
        .lines()
        .find(|l| l.starts_with("tempriv_serve_cache_hit_rate"))
        .expect("hit rate gauge");
    let rate: f64 = hit_rate_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert!(rate > 0.0, "non-zero hit rate after a warm submission");
    assert!(metrics.contains("tempriv_serve_admitted_total{tenant=acme} 1"));

    shutdown(&addr, handle);
}

#[test]
fn sse_privacy_stream_emits_points_then_done() {
    let (addr, handle) = spawn_server(ephemeral(|_| {}));

    // Two sweep points with the privacy observatory on.
    let spec = "{\"experiment\":\"fig2\",\"inv_lambdas\":[4.0,6.0],\
                \"packets_per_source\":40,\"seed\":3,\"privacy_interval\":50}";
    let resp = submit_job(&addr, "sse", spec).unwrap();
    assert_eq!(resp.status, 202);
    let id = extract_id(&resp.text());

    let frames = read_sse(&addr, &format!("/v1/jobs/{id}/privacy")).unwrap();
    let points: Vec<_> = frames.iter().filter(|(e, _)| e == "point").collect();
    let dones: Vec<_> = frames.iter().filter(|(e, _)| e == "done").collect();
    assert_eq!(points.len(), 2, "one frame per sweep point: {frames:?}");
    assert!(points[0].1.contains("\"point\":0"));
    assert!(points[0].1.contains("series"));
    assert_eq!(dones.len(), 1);
    assert!(dones[0].1.contains("\"ok\":true"));

    // A job without a privacy interval streams just `done`.
    let plain = submit_job(&addr, "sse", &tiny_spec(4)).unwrap();
    let plain_id = extract_id(&plain.text());
    wait_done(&addr, &plain_id);
    let frames = read_sse(&addr, &format!("/v1/jobs/{plain_id}/privacy")).unwrap();
    assert_eq!(frames.len(), 1);
    assert_eq!(frames[0].0, "done");

    shutdown(&addr, handle);
}

#[test]
fn admission_rejects_with_retry_after_over_http() {
    // No workers: every admitted job parks in the queue, so the bounds
    // are easy to hit deterministically.
    let (addr, handle) = spawn_server(ephemeral(|cfg| {
        cfg.workers = 0;
        cfg.max_queue = 2;
        cfg.tenant_quota = 1;
    }));

    let first = submit_job(&addr, "noisy", &tiny_spec(100)).unwrap();
    assert_eq!(first.status, 202);

    // Same tenant, second cold job: per-tenant quota.
    let second = submit_job(&addr, "noisy", &tiny_spec(101)).unwrap();
    assert_eq!(second.status, 429);
    assert!(
        second.header("retry-after").is_some(),
        "Retry-After present"
    );
    assert!(second.text().contains("tenant_quota"));

    // A quiet tenant still gets in.
    let quiet = submit_job(&addr, "quiet", &tiny_spec(102)).unwrap();
    assert_eq!(quiet.status, 202, "quiet tenant unaffected by noisy one");

    // Queue now full (2 admitted): even a fresh tenant bounces.
    let third = submit_job(&addr, "fresh", &tiny_spec(103)).unwrap();
    assert_eq!(third.status, 429);
    assert!(third.text().contains("queue_full"));

    let metrics = request(&addr, "GET", "/metrics", &[], &[]).unwrap().text();
    assert!(metrics.contains("tempriv_serve_rejected_total{tenant=noisy} 1"));
    assert!(metrics.contains("tempriv_serve_rejected_total{tenant=fresh} 1"));
    assert!(metrics.contains("tempriv_serve_queue_depth 2"));

    shutdown(&addr, handle);
}

#[test]
fn kill_and_restart_resumes_queued_jobs_without_loss_or_duplication() {
    let dir = std::env::temp_dir().join("tempriv_serve_resume_e2e");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal_path = dir.join("serve.jsonl");
    let cache_dir = dir.join("cache");

    // Phase 1: a server with no workers accepts three jobs and is
    // killed (dropped without shutdown) with all three still queued.
    let (addr, handle) = spawn_server(ephemeral(|cfg| {
        cfg.workers = 0;
        cfg.journal = Some(journal_path.clone());
        cfg.cache_dir = Some(cache_dir.clone());
    }));
    let mut ids = Vec::new();
    for seed in [201, 202, 203] {
        let resp = submit_job(&addr, "resume", &tiny_spec(seed)).unwrap();
        assert_eq!(resp.status, 202);
        ids.push(extract_id(&resp.text()));
    }
    // Hard stop: shutdown endpoint stops the accept loop; queued jobs
    // were never run (workers = 0), exactly like a kill mid-backlog.
    shutdown(&addr, handle);

    // Phase 2: a new server over the same journal resumes the queue.
    let server = Server::bind(ephemeral(|cfg| {
        cfg.workers = 2;
        cfg.journal = Some(journal_path.clone());
        cfg.cache_dir = Some(cache_dir.clone());
    }))
    .unwrap();
    assert_eq!(server.resumed_queue_len(), 3, "all queued jobs resumed");
    let handle = server.spawn();
    let addr = handle.addr.to_string();

    for id in &ids {
        let status = wait_done(&addr, id);
        assert!(status.contains("\"ok\":true"), "job {id}: {status}");
    }

    // No duplication: the journal holds exactly one Submitted and one
    // Completed per job id, and every job simulated exactly once.
    shutdown(&addr, handle);
    let (_journal, events) = ServeJournal::open(&journal_path).unwrap();
    for id in &ids {
        let submitted = events
            .iter()
            .filter(|e| matches!(e, ServeEvent::Submitted { id: jid, .. } if jid == id))
            .count();
        let completed = events
            .iter()
            .filter(|e| matches!(e, ServeEvent::Completed { id: jid, .. } if jid == id))
            .count();
        assert_eq!(submitted, 1, "job {id} submitted once");
        assert_eq!(completed, 1, "job {id} completed once");
    }
    let fresh_compute = events
        .iter()
        .filter(|e| {
            matches!(
                e,
                ServeEvent::Completed {
                    ok: true,
                    cached: false,
                    ..
                }
            )
        })
        .count();
    assert_eq!(fresh_compute, 3, "each job simulated exactly once");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_tolerates_a_torn_journal_line() {
    let dir = std::env::temp_dir().join("tempriv_serve_torn_e2e");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal_path = dir.join("serve.jsonl");

    // Accept two jobs, then simulate a crash mid-append of a third.
    let (addr, handle) = spawn_server(ephemeral(|cfg| {
        cfg.workers = 0;
        cfg.journal = Some(journal_path.clone());
    }));
    for seed in [301, 302] {
        assert_eq!(
            submit_job(&addr, "torn", &tiny_spec(seed)).unwrap().status,
            202
        );
    }
    shutdown(&addr, handle);
    let mut text = std::fs::read_to_string(&journal_path).unwrap();
    text.push_str("{\"Submitted\":{\"seq\":9,\"id\":\"j9\",\"tena");
    std::fs::write(&journal_path, &text).unwrap();

    // Restart: both intact jobs resume; the torn line is repaired away.
    let server = Server::bind(ephemeral(|cfg| {
        cfg.workers = 2;
        cfg.journal = Some(journal_path.clone());
    }))
    .unwrap();
    assert_eq!(server.resumed_queue_len(), 2);
    let handle = server.spawn();
    let addr = handle.addr.to_string();
    let j1 = wait_done(&addr, "j1");
    assert!(j1.contains("\"ok\":true"));
    shutdown(&addr, handle);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn traced_job_exports_one_chrome_timeline_with_a_consistent_trace_id() {
    let (addr, handle) = spawn_server(ephemeral(|_| {}));

    // Untraced job first: the trace endpoint refuses politely.
    let plain = submit_job(&addr, "trace", &tiny_spec(41)).unwrap();
    let plain_id = extract_id(&plain.text());
    wait_done(&addr, &plain_id);
    let refused = request(
        &addr,
        "GET",
        &format!("/v1/jobs/{plain_id}/trace"),
        &[],
        &[],
    )
    .unwrap();
    assert_eq!(refused.status, 404);
    assert!(refused.text().contains("\\\"trace\\\":true"));

    // Traced two-point job: one Chrome JSON with serve + queue + job +
    // scenario spans all carrying the same trace id.
    let spec = "{\"experiment\":\"fig2\",\"inv_lambdas\":[4.0,6.0],\
                \"packets_per_source\":40,\"seed\":42,\"trace\":true}";
    let resp = submit_job(&addr, "trace", spec).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.text());
    let id = extract_id(&resp.text());
    wait_done(&addr, &id);
    let trace = request(&addr, "GET", &format!("/v1/jobs/{id}/trace"), &[], &[]).unwrap();
    assert_eq!(trace.status, 200, "{}", trace.text());
    let body = trace.text();
    assert!(body.starts_with("{\"traceEvents\":["), "{body}");
    assert!(body.trim_end().ends_with("]}"), "{body}");
    // The request span, queue-wait span, per-point job spans, phase
    // bands, and packet-residence events all ride along.
    assert!(body.contains(&format!("POST /v1/jobs {id}")));
    assert!(body.contains("queue wait"));
    assert!(body.contains("\"job 0\""));
    assert!(body.contains("\"job 1\""));
    assert!(body.contains("engine_loop"));
    assert!(body.contains("residence"), "flight events merged in");
    // Exactly one trace id across every span event.
    let ids: std::collections::BTreeSet<&str> = body
        .split("\"trace_id\":\"")
        .skip(1)
        .filter_map(|rest| rest.split('"').next())
        .collect();
    assert_eq!(ids.len(), 1, "single trace id end to end: {ids:?}");

    // The queue-wait histogram saw the cold jobs.
    let metrics = request(&addr, "GET", "/metrics", &[], &[]).unwrap().text();
    assert!(
        metrics.contains("tempriv_serve_queue_wait_ms_count"),
        "{metrics}"
    );

    shutdown(&addr, handle);
}

#[test]
fn digest_endpoint_returns_the_same_root_warm_and_cold() {
    let (addr, handle) = spawn_server(ephemeral(|_| {}));

    // Cold run: simulated, audit digests frozen next to the rows.
    let cold = submit_job(&addr, "audit", &tiny_spec(61)).unwrap();
    assert_eq!(cold.status, 202, "{}", cold.text());
    let cold_id = extract_id(&cold.text());
    wait_done(&addr, &cold_id);
    let cold_digest = request(
        &addr,
        "GET",
        &format!("/v1/jobs/{cold_id}/digest"),
        &[],
        &[],
    )
    .unwrap();
    assert_eq!(cold_digest.status, 200, "{}", cold_digest.text());
    let cold_body = cold_digest.text();
    assert!(cold_body.contains("\"root\":\""), "{cold_body}");
    assert!(cold_body.contains("\"checkpoints\""), "{cold_body}");

    // Warm hit: no simulation, but the digest response — and therefore
    // the run root — is byte-identical to the cold run's.
    let warm = submit_job(&addr, "audit", &tiny_spec(61)).unwrap();
    assert_eq!(warm.status, 200, "{}", warm.text());
    assert!(warm.text().contains("\"cached\":true"));
    let warm_id = extract_id(&warm.text());
    let warm_digest = request(
        &addr,
        "GET",
        &format!("/v1/jobs/{warm_id}/digest"),
        &[],
        &[],
    )
    .unwrap();
    assert_eq!(warm_digest.status, 200);
    assert_eq!(
        warm_digest.body, cold_digest.body,
        "warm digest must be byte-identical to the cold run's"
    );

    // A different seed gets a different root.
    let other = submit_job(&addr, "audit", &tiny_spec(62)).unwrap();
    let other_id = extract_id(&other.text());
    wait_done(&addr, &other_id);
    let other_digest = request(
        &addr,
        "GET",
        &format!("/v1/jobs/{other_id}/digest"),
        &[],
        &[],
    )
    .unwrap();
    assert_eq!(other_digest.status, 200);
    assert_ne!(
        other_digest.body, cold_digest.body,
        "a different seed diverges"
    );

    shutdown(&addr, handle);
}

#[test]
fn unknown_routes_and_bad_specs_are_clean_errors() {
    let (addr, handle) = spawn_server(ephemeral(|_| {}));

    let missing = request(&addr, "GET", "/v1/jobs/j999", &[], &[]).unwrap();
    assert_eq!(missing.status, 404);
    assert!(missing.text().contains("no such job"));

    let bad = submit_job(&addr, "t", "{\"experiment\":\"nope\"}").unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad.text().contains("unknown experiment"));

    let nowhere = request(&addr, "GET", "/v2/other", &[], &[]).unwrap();
    assert_eq!(nowhere.status, 404);

    let wrong_method = request(&addr, "DELETE", "/v1/jobs", &[], &[]).unwrap();
    assert_eq!(wrong_method.status, 405);

    shutdown(&addr, handle);
}

fn extract_id(body: &str) -> String {
    body.split("\"id\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("id in response")
        .to_string()
}

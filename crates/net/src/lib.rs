//! # tempriv-net — wireless sensor network substrate
//!
//! The network model of *Temporal Privacy in Wireless Sensor Networks*
//! (ICDCS 2007), built from scratch:
//!
//! * [`packet`] — packets with TinyOS-MultiHop-style cleartext headers and
//!   sealed payloads; the type system enforces the paper's threat model
//!   (adversaries read headers and arrival times, never payloads),
//! * [`topology`] — deployment graphs (line, grid, explicit),
//! * [`geometric`] — random unit-disk deployments,
//! * [`routing`] — min-hop convergecast routing trees (BFS),
//! * [`convergecast`] — the paper's Figure 1 evaluation layout: flows with
//!   hop counts 15/22/9/11 merging on a shared trunk into the sink,
//! * [`traffic`] — periodic (the §5 evaluation workload), jittered, and
//!   Poisson (the §3–§4 analysis workload) sources,
//! * [`link`] — the constant-delay PHY/MAC abstraction (τ = 1),
//! * [`energy`] — per-packet radio energy costs (Mica-2-like),
//! * [`mobility`] — random-waypoint assets and the detections they trigger
//!   (the habitat-monitoring motivating scenario),
//! * [`ids`] — identifier newtypes.
//!
//! # Examples
//!
//! ```
//! use tempriv_net::convergecast::Convergecast;
//! use tempriv_net::ids::FlowId;
//! use tempriv_net::traffic::TrafficModel;
//!
//! let layout = Convergecast::paper_figure1();
//! let s1 = layout.source(FlowId(0));
//! assert_eq!(layout.routing().hops(s1), Some(15));
//!
//! let workload = TrafficModel::periodic(2.0); // the paper's fastest rate
//! assert_eq!(workload.mean_rate(), 0.5);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod convergecast;
pub mod energy;
pub mod geometric;
pub mod ids;
pub mod link;
pub mod mobility;
pub mod packet;
pub mod routing;
pub mod topology;
pub mod traffic;

pub use convergecast::{Convergecast, ConvergecastBuilder, LayoutError};
pub use energy::EnergyModel;
pub use geometric::GeometricDeployment;
pub use ids::{FlowId, NodeId, PacketId};
pub use link::LinkModel;
pub use packet::{CleartextHeader, Packet, PayloadView, SealedPayload, SinkKey};
pub use routing::{RoutingError, RoutingTree};
pub use topology::Topology;
pub use traffic::TrafficModel;

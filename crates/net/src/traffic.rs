//! Traffic (packet creation) models.
//!
//! The analysis of §3–§4 assumes Poisson sources; the evaluation of §5
//! deliberately uses a *realistic* sensor model instead — strictly
//! periodic reporting with inter-arrival `1/λ`. Both are provided, plus a
//! jittered periodic model in between.

use serde::{Deserialize, Serialize};
use tempriv_sim::rng::SimRng;
use tempriv_sim::time::{SimDuration, SimTime};

/// How a source creates packets over time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TrafficModel {
    /// Strictly periodic creation every `interval` time units — the
    /// paper's §5.2 evaluation workload.
    Periodic {
        /// Inter-arrival time `1/λ`.
        interval: f64,
    },
    /// Periodic with uniform jitter: each gap is
    /// `interval · Uniform[1 − jitter, 1 + jitter]`.
    PeriodicJitter {
        /// Mean inter-arrival time.
        interval: f64,
        /// Relative jitter in `[0, 1)`.
        jitter: f64,
    },
    /// Poisson process of the given rate — the §3/§4 analysis workload.
    Poisson {
        /// Creation rate λ.
        rate: f64,
    },
    /// Bursty on/off source: `burst` packets spaced `interval`, then an
    /// `off` pause, repeating — an asset passing a sensor, a threshold
    /// alarm, duty-cycled reporting.
    OnOff {
        /// Intra-burst inter-arrival time.
        interval: f64,
        /// Packets per burst.
        burst: u32,
        /// Pause between the last packet of a burst and the first of the
        /// next.
        off: f64,
    },
}

impl TrafficModel {
    /// Creates a periodic model from an inter-arrival time.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is non-positive or not finite.
    #[must_use]
    pub fn periodic(interval: f64) -> Self {
        assert!(
            interval.is_finite() && interval > 0.0,
            "inter-arrival time must be positive, got {interval}"
        );
        TrafficModel::Periodic { interval }
    }

    /// Creates a jittered periodic model.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is non-positive/not finite or `jitter` is
    /// outside `[0, 1)`.
    #[must_use]
    pub fn periodic_jitter(interval: f64, jitter: f64) -> Self {
        assert!(
            interval.is_finite() && interval > 0.0,
            "inter-arrival time must be positive, got {interval}"
        );
        assert!(
            (0.0..1.0).contains(&jitter),
            "jitter must be in [0, 1), got {jitter}"
        );
        TrafficModel::PeriodicJitter { interval, jitter }
    }

    /// Creates a Poisson model from a rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is non-positive or not finite.
    #[must_use]
    pub fn poisson(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "creation rate must be positive, got {rate}"
        );
        TrafficModel::Poisson { rate }
    }

    /// Creates a bursty on/off model.
    ///
    /// # Panics
    ///
    /// Panics if `interval` or `off` is non-positive/not finite, or
    /// `burst == 0`.
    #[must_use]
    pub fn on_off(interval: f64, burst: u32, off: f64) -> Self {
        assert!(
            interval.is_finite() && interval > 0.0,
            "intra-burst interval must be positive, got {interval}"
        );
        assert!(burst > 0, "bursts need at least one packet");
        assert!(
            off.is_finite() && off > 0.0,
            "off time must be positive, got {off}"
        );
        TrafficModel::OnOff {
            interval,
            burst,
            off,
        }
    }

    /// Long-run mean creation rate λ.
    #[must_use]
    pub fn mean_rate(&self) -> f64 {
        match *self {
            TrafficModel::Periodic { interval } | TrafficModel::PeriodicJitter { interval, .. } => {
                1.0 / interval
            }
            TrafficModel::Poisson { rate } => rate,
            TrafficModel::OnOff {
                interval,
                burst,
                off,
            } => f64::from(burst) / (f64::from(burst - 1) * interval + off),
        }
    }

    /// Mean inter-arrival time `1/λ`.
    #[must_use]
    pub fn mean_interval(&self) -> f64 {
        1.0 / self.mean_rate()
    }

    /// Samples the gap to the next packet creation for *memoryless*
    /// models.
    ///
    /// # Panics
    ///
    /// Panics for [`TrafficModel::OnOff`], whose gaps depend on burst
    /// position — use [`TrafficModel::sampler`] instead.
    pub fn next_interarrival(&self, rng: &mut SimRng) -> SimDuration {
        let gap = match *self {
            TrafficModel::Periodic { interval } => interval,
            TrafficModel::PeriodicJitter { interval, jitter } => {
                rng.sample_uniform(interval * (1.0 - jitter), interval * (1.0 + jitter))
            }
            TrafficModel::Poisson { rate } => rng.sample_exp(1.0 / rate),
            TrafficModel::OnOff { .. } => {
                panic!("on/off traffic is stateful; use TrafficModel::sampler()")
            }
        };
        SimDuration::from_units(gap)
    }

    /// Creates a stateful gap sampler (required for [`TrafficModel::OnOff`];
    /// equivalent to [`TrafficModel::next_interarrival`] for the others).
    #[must_use]
    pub fn sampler(&self) -> TrafficSampler {
        TrafficSampler {
            model: *self,
            burst_pos: 0,
        }
    }

    /// Materializes the first `count` creation instants, starting one gap
    /// after `start` (the paper's sources emit their first packet after
    /// one full interval).
    #[must_use]
    pub fn schedule(&self, start: SimTime, count: usize, rng: &mut SimRng) -> Vec<SimTime> {
        let mut sampler = self.sampler();
        let mut out = Vec::with_capacity(count);
        let mut at = start;
        for _ in 0..count {
            at += sampler.next_interarrival(rng);
            out.push(at);
        }
        out
    }
}

/// A stateful per-source gap sampler (tracks burst position for
/// [`TrafficModel::OnOff`]; stateless otherwise).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficSampler {
    model: TrafficModel,
    burst_pos: u32,
}

impl TrafficSampler {
    /// Samples the gap to the next packet creation.
    pub fn next_interarrival(&mut self, rng: &mut SimRng) -> SimDuration {
        match self.model {
            TrafficModel::OnOff {
                interval,
                burst,
                off,
            } => {
                // The gap *before* packet at burst position p: an off-pause
                // before each burst's first packet, `interval` inside.
                let gap = if self.burst_pos == 0 { off } else { interval };
                self.burst_pos = (self.burst_pos + 1) % burst;
                SimDuration::from_units(gap)
            }
            stateless => stateless.next_interarrival(rng),
        }
    }

    /// The underlying model.
    #[must_use]
    pub const fn model(&self) -> TrafficModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempriv_sim::rng::RngFactory;

    fn rng() -> SimRng {
        RngFactory::new(99).stream(0)
    }

    #[test]
    fn periodic_gaps_are_exact() {
        let m = TrafficModel::periodic(2.0);
        let mut r = rng();
        for _ in 0..5 {
            assert_eq!(m.next_interarrival(&mut r), SimDuration::from_units(2.0));
        }
        assert_eq!(m.mean_rate(), 0.5);
        assert_eq!(m.mean_interval(), 2.0);
    }

    #[test]
    fn schedule_is_arithmetic_for_periodic() {
        let m = TrafficModel::periodic(3.0);
        let mut r = rng();
        let times = m.schedule(SimTime::ZERO, 4, &mut r);
        let units: Vec<f64> = times.iter().map(|t| t.as_units()).collect();
        assert_eq!(units, vec![3.0, 6.0, 9.0, 12.0]);
    }

    #[test]
    fn jitter_stays_within_band() {
        let m = TrafficModel::periodic_jitter(10.0, 0.2);
        let mut r = rng();
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let gap = m.next_interarrival(&mut r).as_units();
            assert!((8.0..12.0).contains(&gap), "gap {gap}");
            sum += gap;
        }
        assert!((sum / 10_000.0 - 10.0).abs() < 0.1);
        assert_eq!(m.mean_rate(), 0.1);
    }

    #[test]
    fn poisson_gaps_have_exponential_mean() {
        let m = TrafficModel::poisson(0.5);
        let mut r = rng();
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| m.next_interarrival(&mut r).as_units()).sum();
        assert!((sum / n as f64 - 2.0).abs() < 0.05);
    }

    #[test]
    fn poisson_counts_are_poisson_distributed() {
        // Count creations in unit windows; variance should match the mean.
        let m = TrafficModel::poisson(3.0);
        let mut r = rng();
        let times = m.schedule(SimTime::ZERO, 60_000, &mut r);
        let horizon = times.last().unwrap().as_units();
        let windows = horizon.floor() as usize;
        let mut counts = vec![0u32; windows + 1];
        for t in &times {
            let w = t.as_units().floor() as usize;
            if w <= windows {
                counts[w] += 1;
            }
        }
        let n = counts.len() as f64;
        let mean = counts.iter().map(|&c| c as f64).sum::<f64>() / n;
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!(
            (var / mean - 1.0).abs() < 0.1,
            "index of dispersion {}",
            var / mean
        );
    }

    #[test]
    fn schedule_starts_after_one_gap() {
        let m = TrafficModel::periodic(5.0);
        let mut r = rng();
        let times = m.schedule(SimTime::from_units(100.0), 1, &mut r);
        assert_eq!(times[0], SimTime::from_units(105.0));
    }

    #[test]
    fn on_off_gaps_follow_burst_structure() {
        let m = TrafficModel::on_off(2.0, 3, 50.0);
        let mut sampler = m.sampler();
        let mut r = rng();
        let gaps: Vec<f64> = (0..7)
            .map(|_| sampler.next_interarrival(&mut r).as_units())
            .collect();
        // off, in, in, off, in, in, off
        assert_eq!(gaps, vec![50.0, 2.0, 2.0, 50.0, 2.0, 2.0, 50.0]);
        assert_eq!(sampler.model(), m);
    }

    #[test]
    fn on_off_mean_rate_matches_schedule() {
        let m = TrafficModel::on_off(2.0, 5, 40.0);
        // Cycle: 4 gaps of 2 + one of 40 = 48 units for 5 packets.
        assert!((m.mean_rate() - 5.0 / 48.0).abs() < 1e-12);
        let mut r = rng();
        let times = m.schedule(SimTime::ZERO, 500, &mut r);
        let span = (times[499] - times[0]).as_units();
        let measured = 499.0 / span;
        assert!((measured - m.mean_rate()).abs() < 0.01 * m.mean_rate());
    }

    #[test]
    #[should_panic(expected = "stateful")]
    fn on_off_rejects_stateless_sampling() {
        let mut r = rng();
        let _ = TrafficModel::on_off(1.0, 2, 5.0).next_interarrival(&mut r);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_interval_rejected() {
        let _ = TrafficModel::periodic(0.0);
    }

    #[test]
    #[should_panic(expected = "jitter")]
    fn out_of_range_jitter_rejected() {
        let _ = TrafficModel::periodic_jitter(1.0, 1.0);
    }
}

//! Synthetic convergecast layouts — the paper's Figure 1 topology.
//!
//! The evaluation topology has four source nodes whose routes (hop counts
//! 15, 22, 9 and 11) snake across a field and *merge* before reaching the
//! sink. What drives every result is (a) each flow's hop count and (b)
//! where flows start sharing nodes — shared nodes see the superposed
//! traffic of all flows through them, which is where RCAD preemption
//! concentrates. [`Convergecast`] builds exactly that structure: a shared
//! trunk of configurable length into the sink, plus a private chain per
//! flow.

use serde::{Deserialize, Serialize};

use crate::ids::{FlowId, NodeId};
use crate::routing::{RoutingError, RoutingTree};

/// Builder for [`Convergecast`] layouts.
#[derive(Debug, Clone, Default)]
pub struct ConvergecastBuilder {
    trunk_hops: u32,
    flow_hops: Vec<u32>,
}

impl ConvergecastBuilder {
    /// Starts an empty builder (no trunk, no flows).
    #[must_use]
    pub fn new() -> Self {
        ConvergecastBuilder::default()
    }

    /// Sets the number of hops every flow shares on its way into the sink.
    #[must_use]
    pub fn trunk_hops(mut self, hops: u32) -> Self {
        self.trunk_hops = hops;
        self
    }

    /// Adds a flow with the given total hop count (source to sink).
    #[must_use]
    pub fn flow(mut self, hops: u32) -> Self {
        self.flow_hops.push(hops);
        self
    }

    /// Adds several flows at once.
    #[must_use]
    pub fn flows<I: IntoIterator<Item = u32>>(mut self, hops: I) -> Self {
        self.flow_hops.extend(hops);
        self
    }

    /// Builds the layout.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if no flows were added or some flow's hop
    /// count does not exceed the trunk length (each flow needs at least
    /// its source node outside the trunk).
    pub fn build(self) -> Result<Convergecast, LayoutError> {
        if self.flow_hops.is_empty() {
            return Err(LayoutError::NoFlows);
        }
        for (i, &h) in self.flow_hops.iter().enumerate() {
            if h <= self.trunk_hops {
                return Err(LayoutError::FlowShorterThanTrunk {
                    flow: FlowId(i as u32),
                    hops: h,
                    trunk: self.trunk_hops,
                });
            }
        }
        // Node 0 is the sink; nodes 1..=T the trunk (node i's parent is
        // i−1); each flow then appends its private chain + source.
        let mut parents: Vec<Option<NodeId>> = vec![None];
        for i in 1..=self.trunk_hops {
            parents.push(Some(NodeId(i - 1)));
        }
        let trunk_top = NodeId(self.trunk_hops);
        let mut sources = Vec::with_capacity(self.flow_hops.len());
        for &h in &self.flow_hops {
            let private = h - self.trunk_hops; // chain length incl. source
            let mut at = trunk_top;
            for _ in 0..private {
                let id = NodeId(parents.len() as u32);
                parents.push(Some(at));
                at = id;
            }
            sources.push(at);
        }
        let routing =
            RoutingTree::from_parents(NodeId(0), parents).expect("construction yields a tree");
        Ok(Convergecast {
            routing,
            sources,
            trunk_hops: self.trunk_hops,
            flow_hops: self.flow_hops,
        })
    }
}

/// A convergecast deployment: per-flow private chains joined by a shared
/// trunk into the sink.
///
/// # Examples
///
/// ```
/// use tempriv_net::convergecast::Convergecast;
/// use tempriv_net::ids::FlowId;
///
/// let layout = Convergecast::paper_figure1();
/// assert_eq!(layout.num_flows(), 4);
/// assert_eq!(layout.hop_count(FlowId(0)), 15); // flow S1
/// assert_eq!(layout.hop_count(FlowId(1)), 22); // flow S2
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Convergecast {
    routing: RoutingTree,
    sources: Vec<NodeId>,
    trunk_hops: u32,
    flow_hops: Vec<u32>,
}

impl Convergecast {
    /// Starts a builder.
    #[must_use]
    pub fn builder() -> ConvergecastBuilder {
        ConvergecastBuilder::new()
    }

    /// The paper's Figure 1 evaluation layout: four flows with hop counts
    /// 15, 22, 9 and 11 sharing an 8-hop trunk into the sink
    /// (calibrated so RCAD's latency reduction at the highest traffic rate
    /// matches the paper's reported ~2.5x).
    #[must_use]
    pub fn paper_figure1() -> Self {
        Convergecast::builder()
            .trunk_hops(8)
            .flows([15, 22, 9, 11])
            .build()
            .expect("paper layout is valid")
    }

    /// The routing tree of the deployment.
    #[must_use]
    pub const fn routing(&self) -> &RoutingTree {
        &self.routing
    }

    /// Source node of each flow, indexed by [`FlowId`].
    #[must_use]
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// Source node of `flow`.
    ///
    /// # Panics
    ///
    /// Panics if `flow` is out of range.
    #[must_use]
    pub fn source(&self, flow: FlowId) -> NodeId {
        self.sources[flow.index()]
    }

    /// Total hop count of `flow` (source to sink).
    ///
    /// # Panics
    ///
    /// Panics if `flow` is out of range.
    #[must_use]
    pub fn hop_count(&self, flow: FlowId) -> u32 {
        self.flow_hops[flow.index()]
    }

    /// Number of flows.
    #[must_use]
    pub fn num_flows(&self) -> usize {
        self.sources.len()
    }

    /// Number of nodes, including the sink.
    #[must_use]
    pub fn len(&self) -> usize {
        self.routing.len()
    }

    /// `true` if the layout has no nodes (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.routing.is_empty()
    }

    /// Hops shared by all flows directly before the sink.
    #[must_use]
    pub const fn trunk_hops(&self) -> u32 {
        self.trunk_hops
    }

    /// Number of flows whose route passes through `node`.
    #[must_use]
    pub fn flows_through(&self, node: NodeId) -> usize {
        self.sources
            .iter()
            .filter(|&&src| self.routing.path(src).contains(&node))
            .count()
    }
}

/// Errors from convergecast layout construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum LayoutError {
    /// The builder was given no flows.
    NoFlows,
    /// A flow's hop count does not exceed the trunk length.
    FlowShorterThanTrunk {
        /// The offending flow.
        flow: FlowId,
        /// Its requested hop count.
        hops: u32,
        /// The configured trunk length.
        trunk: u32,
    },
}

impl core::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LayoutError::NoFlows => write!(f, "a convergecast layout needs at least one flow"),
            LayoutError::FlowShorterThanTrunk { flow, hops, trunk } => write!(
                f,
                "flow {flow} has {hops} hops but the shared trunk is {trunk} hops; \
                 flows must be strictly longer than the trunk"
            ),
        }
    }
}

impl std::error::Error for LayoutError {}

impl From<RoutingError> for LayoutError {
    fn from(_: RoutingError) -> Self {
        // Construction guarantees a valid tree; this impl exists only so
        // `?` composes if the invariant is ever relaxed.
        LayoutError::NoFlows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_hop_counts() {
        let c = Convergecast::paper_figure1();
        let expect = [15u32, 22, 9, 11];
        for (i, &h) in expect.iter().enumerate() {
            let flow = FlowId(i as u32);
            assert_eq!(c.hop_count(flow), h);
            assert_eq!(c.routing().hops(c.source(flow)), Some(h));
        }
        // Node count: sink + trunk(8) + private chains (7 + 14 + 1 + 3).
        assert_eq!(c.len(), 1 + 8 + 7 + 14 + 1 + 3);
    }

    #[test]
    fn all_flows_share_the_trunk() {
        let c = Convergecast::paper_figure1();
        // Every trunk node carries all four flows.
        for i in 1..=8u32 {
            assert_eq!(c.flows_through(NodeId(i)), 4, "trunk node {i}");
        }
        // Each source carries exactly its own flow.
        for &src in c.sources() {
            assert_eq!(c.flows_through(src), 1);
        }
    }

    #[test]
    fn zero_trunk_gives_disjoint_paths() {
        let c = Convergecast::builder()
            .trunk_hops(0)
            .flows([3, 4])
            .build()
            .unwrap();
        assert_eq!(c.trunk_hops(), 0);
        let p0 = c.routing().path(c.source(FlowId(0)));
        let p1 = c.routing().path(c.source(FlowId(1)));
        let shared: Vec<_> = p0.iter().filter(|n| p1.contains(n)).collect();
        assert_eq!(shared, vec![&NodeId(0)]); // only the sink
    }

    #[test]
    fn paths_step_through_private_then_trunk() {
        let c = Convergecast::builder()
            .trunk_hops(2)
            .flows([5])
            .build()
            .unwrap();
        let path = c.routing().path(c.source(FlowId(0)));
        assert_eq!(path.len(), 6); // source + 2 private + 2 trunk + sink
        assert_eq!(*path.last().unwrap(), NodeId(0));
        // Last two before the sink are trunk nodes 1 and 2.
        assert_eq!(path[path.len() - 2], NodeId(1));
        assert_eq!(path[path.len() - 3], NodeId(2));
    }

    #[test]
    fn builder_rejects_short_flows() {
        let err = Convergecast::builder()
            .trunk_hops(8)
            .flows([6])
            .build()
            .unwrap_err();
        assert!(matches!(err, LayoutError::FlowShorterThanTrunk { .. }));
        assert!(err.to_string().contains("trunk"));
    }

    #[test]
    fn builder_rejects_empty() {
        let err = Convergecast::builder().build().unwrap_err();
        assert_eq!(err, LayoutError::NoFlows);
    }

    #[test]
    fn single_flow_is_a_line() {
        let c = Convergecast::builder()
            .trunk_hops(0)
            .flow(15)
            .build()
            .unwrap();
        assert_eq!(c.len(), 16);
        assert_eq!(c.routing().hops(c.source(FlowId(0))), Some(15));
    }
}

//! Packets: cleartext headers and sealed payloads.
//!
//! The paper's network model (§2) splits every packet into
//!
//! * **cleartext headers** needed for routing — modelled on the TinyOS
//!   1.1.7 MultiHop header: previous hop, origin, routing-layer sequence
//!   number, and hop count. An eavesdropper reads these freely.
//! * an **encrypted payload** carrying the application data: sensor
//!   reading, application sequence number, and the creation timestamp.
//!   Only the sink can open it.
//!
//! The type system enforces the threat model: [`SealedPayload`]'s fields
//! are reachable only through [`SealedPayload::open`], which demands a
//! [`SinkKey`] — a capability constructed by the deployment (simulation
//! driver) and handed to the legitimate receiver. Adversary code paths
//! receive [`crate::packet::Packet::header`] plus arrival times and
//! nothing else.

use serde::{Deserialize, Serialize};
use tempriv_sim::time::SimTime;

use crate::ids::{FlowId, NodeId, PacketId};

/// The unencrypted routing header (TinyOS `MultiHop.h` fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CleartextHeader {
    /// The node that last transmitted this packet.
    pub prev_hop: NodeId,
    /// The node that originated the packet (routing-layer origin).
    pub origin: NodeId,
    /// Routing-layer sequence number (loop suppression; not flow-specific,
    /// so — as the paper notes — useless for creation-time inference).
    pub routing_seq: u32,
    /// Hops traversed so far; incremented by each forwarder.
    pub hop_count: u32,
}

/// The application payload, sealed under the network's pairwise keys.
///
/// Field access requires the sink's [`SinkKey`]; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SealedPayload {
    app_seq: u32,
    created_at: SimTime,
    reading: f64,
}

/// Decrypted view of a payload, produced by [`SealedPayload::open`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PayloadView {
    /// Application-level sequence number within the flow.
    pub app_seq: u32,
    /// The packet's creation timestamp — the secret the adversary wants.
    pub created_at: SimTime,
    /// The sensor reading itself.
    pub reading: f64,
}

/// Capability held by the legitimate receiver (the sink). Constructing one
/// marks the holder as inside the trust boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkKey {
    _private: (),
}

impl SinkKey {
    /// Issues the sink's key. Call this only from deployment/driver code;
    /// adversary implementations must never hold a `SinkKey`.
    #[must_use]
    pub const fn issue() -> Self {
        SinkKey { _private: () }
    }
}

impl SealedPayload {
    /// Seals application data into a payload.
    #[must_use]
    pub const fn seal(app_seq: u32, created_at: SimTime, reading: f64) -> Self {
        SealedPayload {
            app_seq,
            created_at,
            reading,
        }
    }

    /// Decrypts the payload with the sink's key.
    #[must_use]
    pub const fn open(&self, _key: &SinkKey) -> PayloadView {
        PayloadView {
            app_seq: self.app_seq,
            created_at: self.created_at,
            reading: self.reading,
        }
    }
}

/// A sensor packet in flight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Simulation-unique identifier (bookkeeping, not on the air).
    pub id: PacketId,
    /// The flow this packet belongs to (bookkeeping; the adversary can
    /// reconstruct it from the cleartext `origin` field).
    pub flow: FlowId,
    header: CleartextHeader,
    payload: SealedPayload,
}

impl Packet {
    /// Creates a fresh packet at its source.
    #[must_use]
    pub fn new(
        id: PacketId,
        flow: FlowId,
        source: NodeId,
        app_seq: u32,
        created_at: SimTime,
        reading: f64,
    ) -> Self {
        Packet {
            id,
            flow,
            header: CleartextHeader {
                prev_hop: source,
                origin: source,
                routing_seq: 0,
                hop_count: 0,
            },
            payload: SealedPayload::seal(app_seq, created_at, reading),
        }
    }

    /// The cleartext header (what an eavesdropper sees).
    #[must_use]
    pub const fn header(&self) -> &CleartextHeader {
        &self.header
    }

    /// The sealed payload (requires a [`SinkKey`] to open).
    #[must_use]
    pub const fn payload(&self) -> &SealedPayload {
        &self.payload
    }

    /// Records a forwarding hop: updates `prev_hop`, increments the hop
    /// count and routing sequence number.
    pub fn record_hop(&mut self, forwarder: NodeId) {
        self.header.prev_hop = forwarder;
        self.header.hop_count += 1;
        self.header.routing_seq = self.header.routing_seq.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(u: f64) -> SimTime {
        SimTime::from_units(u)
    }

    #[test]
    fn fresh_packet_header_is_origin() {
        let p = Packet::new(PacketId(1), FlowId(0), NodeId(9), 0, t(5.0), 21.5);
        assert_eq!(p.header().origin, NodeId(9));
        assert_eq!(p.header().prev_hop, NodeId(9));
        assert_eq!(p.header().hop_count, 0);
    }

    #[test]
    fn record_hop_updates_header() {
        let mut p = Packet::new(PacketId(1), FlowId(0), NodeId(9), 0, t(5.0), 21.5);
        p.record_hop(NodeId(4));
        p.record_hop(NodeId(2));
        assert_eq!(p.header().prev_hop, NodeId(2));
        assert_eq!(p.header().origin, NodeId(9)); // origin never changes
        assert_eq!(p.header().hop_count, 2);
        assert_eq!(p.header().routing_seq, 2);
    }

    #[test]
    fn payload_opens_only_with_key() {
        let p = Packet::new(PacketId(7), FlowId(1), NodeId(3), 12, t(100.0), -4.0);
        let key = SinkKey::issue();
        let view = p.payload().open(&key);
        assert_eq!(view.app_seq, 12);
        assert_eq!(view.created_at, t(100.0));
        assert_eq!(view.reading, -4.0);
    }

    #[test]
    fn payload_serialization_round_trip_keeps_fields_sealed() {
        // Serde support exists for checkpointing whole simulations, but
        // the in-memory API still requires the key.
        let p = Packet::new(PacketId(7), FlowId(1), NodeId(3), 12, t(100.0), -4.0);
        let json = serde_json::to_string(&p).unwrap();
        let back: Packet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}

//! Identifier newtypes for network entities.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a sensor node within one deployment.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct NodeId(pub u32);

/// Identifier of a source→sink flow (one per traffic source).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct FlowId(pub u32);

/// Globally unique identifier of a packet within one simulation run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct PacketId(pub u64);

impl NodeId {
    /// The raw index value.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl FlowId {
    /// The raw index value.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(FlowId(1).to_string(), "f1");
        assert_eq!(PacketId(42).to_string(), "p42");
    }

    #[test]
    fn index_round_trip() {
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(FlowId(2).index(), 2);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(NodeId(2) < NodeId(10));
        assert!(PacketId(5) < PacketId(6));
    }
}

//! Radio energy accounting.
//!
//! Sensor nodes spend their battery on the radio; holding a packet in
//! RAM is effectively free. That asymmetry is why the paper can buffer
//! aggressively: delaying costs (almost) no energy, while every
//! *transmission* does. This module converts the simulator's per-node
//! transmit/receive counts into energy figures using per-packet costs
//! modeled on CC1000-class radios (Mica-2), letting experiments report
//! "energy per delivered packet" next to privacy and latency.

use serde::{Deserialize, Serialize};

/// Per-packet radio energy costs, in abstract millijoule-like units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Cost of transmitting one packet.
    pub tx_cost: f64,
    /// Cost of receiving one packet.
    pub rx_cost: f64,
}

impl EnergyModel {
    /// Creates a model from per-packet costs.
    ///
    /// # Panics
    ///
    /// Panics if a cost is negative or not finite.
    #[must_use]
    pub fn new(tx_cost: f64, rx_cost: f64) -> Self {
        for (name, v) in [("tx_cost", tx_cost), ("rx_cost", rx_cost)] {
            assert!(
                v.is_finite() && v >= 0.0,
                "{name} must be non-negative, got {v}"
            );
        }
        EnergyModel { tx_cost, rx_cost }
    }

    /// Mica-2-like defaults: transmitting a full packet costs roughly
    /// 20 units, receiving roughly 15 (the CC1000 rx/tx draw ratio).
    #[must_use]
    pub fn mica2() -> Self {
        EnergyModel::new(20.0, 15.0)
    }

    /// Energy a node spends given its transmit/receive counts.
    #[must_use]
    pub fn node_energy(&self, tx: u64, rx: u64) -> f64 {
        self.tx_cost * tx as f64 + self.rx_cost * rx as f64
    }

    /// Total energy across per-node `(tx, rx)` counts.
    #[must_use]
    pub fn total_energy<I>(&self, counts: I) -> f64
    where
        I: IntoIterator<Item = (u64, u64)>,
    {
        counts
            .into_iter()
            .map(|(tx, rx)| self.node_energy(tx, rx))
            .sum()
    }

    /// Energy per successfully delivered packet — the efficiency metric
    /// drops and losses degrade (upstream transmissions are wasted).
    ///
    /// Returns infinity if nothing was delivered.
    #[must_use]
    pub fn energy_per_delivered<I>(&self, counts: I, delivered: u64) -> f64
    where
        I: IntoIterator<Item = (u64, u64)>,
    {
        let total = self.total_energy(counts);
        if delivered == 0 {
            f64::INFINITY
        } else {
            total / delivered as f64
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::mica2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_energy_is_linear() {
        let m = EnergyModel::new(2.0, 1.0);
        assert_eq!(m.node_energy(0, 0), 0.0);
        assert_eq!(m.node_energy(3, 5), 11.0);
    }

    #[test]
    fn totals_sum_over_nodes() {
        let m = EnergyModel::new(2.0, 1.0);
        let counts = vec![(1u64, 0u64), (2, 2), (0, 4)];
        assert_eq!(m.total_energy(counts), 2.0 + 6.0 + 4.0);
    }

    #[test]
    fn per_delivered_handles_zero() {
        let m = EnergyModel::mica2();
        assert!(m.energy_per_delivered(vec![(10, 10)], 0).is_infinite());
        let per = m.energy_per_delivered(vec![(10, 10)], 5);
        assert!((per - (10.0 * 20.0 + 10.0 * 15.0) / 5.0).abs() < 1e-12);
    }

    #[test]
    fn mica2_ratio_is_sane() {
        let m = EnergyModel::mica2();
        assert!(m.tx_cost > m.rx_cost);
        assert!(m.rx_cost > 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_cost_rejected() {
        let _ = EnergyModel::new(-1.0, 1.0);
    }
}

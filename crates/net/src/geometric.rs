//! Random geometric (unit-disk) deployments.
//!
//! Real sensor fields are not grids: nodes land where they are dropped
//! and can talk to every neighbor within radio range. A random geometric
//! graph — uniform positions on a rectangle, edges between nodes closer
//! than `range` — is the standard abstraction, and the paper's Figure 1
//! field is visually one. Used by examples and generalization tests; the
//! headline experiments keep the calibrated convergecast layout.

use tempriv_sim::rng::SimRng;

use crate::ids::NodeId;
use crate::topology::Topology;

/// Parameters of a random geometric deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometricDeployment {
    /// Field width.
    pub width: f64,
    /// Field height.
    pub height: f64,
    /// Number of sensors.
    pub nodes: usize,
    /// Radio range (edge iff distance ≤ range).
    pub range: f64,
}

impl GeometricDeployment {
    /// Creates a deployment spec.
    ///
    /// # Panics
    ///
    /// Panics if a dimension or the range is non-positive/not finite, or
    /// `nodes == 0`.
    #[must_use]
    pub fn new(width: f64, height: f64, nodes: usize, range: f64) -> Self {
        for (name, v) in [("width", width), ("height", height), ("range", range)] {
            assert!(v.is_finite() && v > 0.0, "{name} must be positive, got {v}");
        }
        assert!(nodes > 0, "need at least one node");
        GeometricDeployment {
            width,
            height,
            nodes,
            range,
        }
    }

    /// Samples a topology. Node 0 is pinned to the field corner (0, 0) —
    /// the conventional sink placement — and the rest land uniformly.
    ///
    /// The result may be disconnected (routing will report unreachable
    /// nodes); see [`GeometricDeployment::sample_connected`].
    #[must_use]
    pub fn sample(&self, rng: &mut SimRng) -> Topology {
        let mut positions = Vec::with_capacity(self.nodes);
        positions.push((0.0, 0.0));
        for _ in 1..self.nodes {
            positions.push((
                rng.sample_uniform(0.0, self.width),
                rng.sample_uniform(0.0, self.height),
            ));
        }
        let mut topo = Topology::with_nodes(self.nodes);
        for i in 0..self.nodes {
            for j in (i + 1)..self.nodes {
                let (xi, yi) = positions[i];
                let (xj, yj) = positions[j];
                let d2 = (xi - xj).powi(2) + (yi - yj).powi(2);
                if d2 <= self.range * self.range {
                    topo.add_edge(NodeId(i as u32), NodeId(j as u32));
                }
            }
        }
        topo.set_positions(positions);
        topo
    }

    /// Samples until a connected topology appears, up to `attempts`
    /// resamples.
    ///
    /// # Errors
    ///
    /// Returns the number of attempts made if none were connected (raise
    /// the density or range).
    pub fn sample_connected(&self, rng: &mut SimRng, attempts: usize) -> Result<Topology, usize> {
        for _ in 0..attempts {
            let topo = self.sample(rng);
            if topo.is_connected() {
                return Ok(topo);
            }
        }
        Err(attempts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempriv_sim::rng::RngFactory;

    fn rng() -> SimRng {
        RngFactory::new(2024).stream(0)
    }

    #[test]
    fn sample_respects_node_count_and_positions() {
        let spec = GeometricDeployment::new(10.0, 10.0, 40, 3.0);
        let topo = spec.sample(&mut rng());
        assert_eq!(topo.len(), 40);
        assert_eq!(topo.position(NodeId(0)), Some((0.0, 0.0)));
        for node in topo.nodes() {
            let (x, y) = topo.position(node).unwrap();
            assert!((0.0..=10.0).contains(&x) && (0.0..=10.0).contains(&y));
        }
    }

    #[test]
    fn edges_respect_range() {
        let spec = GeometricDeployment::new(10.0, 10.0, 30, 2.5);
        let topo = spec.sample(&mut rng());
        for a in topo.nodes() {
            let (xa, ya) = topo.position(a).unwrap();
            for &b in topo.neighbors(a) {
                let (xb, yb) = topo.position(b).unwrap();
                let d = ((xa - xb).powi(2) + (ya - yb).powi(2)).sqrt();
                assert!(d <= 2.5 + 1e-9, "edge {a}-{b} spans {d}");
            }
        }
    }

    #[test]
    fn dense_fields_connect() {
        let spec = GeometricDeployment::new(8.0, 8.0, 60, 3.0);
        let topo = spec
            .sample_connected(&mut rng(), 20)
            .expect("dense field should connect quickly");
        assert!(topo.is_connected());
    }

    #[test]
    fn sparse_fields_report_failure() {
        let spec = GeometricDeployment::new(100.0, 100.0, 10, 1.0);
        let err = spec.sample_connected(&mut rng(), 5).unwrap_err();
        assert_eq!(err, 5);
    }

    #[test]
    fn sampling_is_deterministic_per_stream() {
        let spec = GeometricDeployment::new(10.0, 10.0, 25, 3.0);
        let a = spec.sample(&mut RngFactory::new(5).stream(1));
        let b = spec.sample(&mut RngFactory::new(5).stream(1));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = GeometricDeployment::new(1.0, 1.0, 0, 1.0);
    }
}

//! Random geometric (unit-disk) deployments.
//!
//! Real sensor fields are not grids: nodes land where they are dropped
//! and can talk to every neighbor within radio range. A random geometric
//! graph — uniform positions on a rectangle, edges between nodes closer
//! than `range` — is the standard abstraction, and the paper's Figure 1
//! field is visually one. Used by examples and generalization tests; the
//! headline experiments keep the calibrated convergecast layout.

use tempriv_sim::rng::SimRng;

use crate::ids::NodeId;
use crate::topology::Topology;

/// Parameters of a random geometric deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometricDeployment {
    /// Field width.
    pub width: f64,
    /// Field height.
    pub height: f64,
    /// Number of sensors.
    pub nodes: usize,
    /// Radio range (edge iff distance ≤ range).
    pub range: f64,
}

impl GeometricDeployment {
    /// Creates a deployment spec.
    ///
    /// # Panics
    ///
    /// Panics if a dimension or the range is non-positive/not finite, or
    /// `nodes == 0`.
    #[must_use]
    pub fn new(width: f64, height: f64, nodes: usize, range: f64) -> Self {
        for (name, v) in [("width", width), ("height", height), ("range", range)] {
            assert!(v.is_finite() && v > 0.0, "{name} must be positive, got {v}");
        }
        assert!(nodes > 0, "need at least one node");
        GeometricDeployment {
            width,
            height,
            nodes,
            range,
        }
    }

    /// Samples a topology. Node 0 is pinned to the field corner (0, 0) —
    /// the conventional sink placement — and the rest land uniformly.
    ///
    /// Edge discovery is grid-bucketed (cell side = `range`, candidates
    /// from the 3×3 neighborhood), so sampling is `O(n · density)`
    /// instead of `O(n²)` — million-node fields sample in seconds. The
    /// produced topology is byte-identical to the all-pairs scan: the
    /// same position draws, and for each node `i` the neighbors `j > i`
    /// are added in ascending order, exactly as the double loop would.
    ///
    /// The result may be disconnected (routing will report unreachable
    /// nodes); see [`GeometricDeployment::sample_connected`].
    #[must_use]
    pub fn sample(&self, rng: &mut SimRng) -> Topology {
        let positions = self.sample_positions(rng);
        let mut topo = Topology::with_nodes(self.nodes);

        // Bucket nodes by cell; pushes in node order keep each bucket
        // internally ascending.
        let nx = ((self.width / self.range).ceil() as usize).max(1);
        let ny = ((self.height / self.range).ceil() as usize).max(1);
        let cell_of = |x: f64, y: f64| {
            let cx = ((x / self.range) as usize).min(nx - 1);
            let cy = ((y / self.range) as usize).min(ny - 1);
            cy * nx + cx
        };
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); nx * ny];
        for (i, &(x, y)) in positions.iter().enumerate() {
            buckets[cell_of(x, y)].push(i as u32);
        }

        let r2 = self.range * self.range;
        let mut candidates: Vec<u32> = Vec::new();
        for i in 0..self.nodes {
            let (xi, yi) = positions[i];
            let cx = ((xi / self.range) as usize).min(nx - 1);
            let cy = ((yi / self.range) as usize).min(ny - 1);
            candidates.clear();
            for dy in cy.saturating_sub(1)..=(cy + 1).min(ny - 1) {
                for dx in cx.saturating_sub(1)..=(cx + 1).min(nx - 1) {
                    for &j in &buckets[dy * nx + dx] {
                        if (j as usize) > i {
                            let (xj, yj) = positions[j as usize];
                            let d2 = (xi - xj).powi(2) + (yi - yj).powi(2);
                            if d2 <= r2 {
                                candidates.push(j);
                            }
                        }
                    }
                }
            }
            // Cells are visited in grid order, not id order; restore the
            // ascending-j order of the all-pairs scan.
            candidates.sort_unstable();
            for &j in &candidates {
                topo.add_edge(NodeId(i as u32), NodeId(j));
            }
        }
        topo.set_positions(positions);
        topo
    }

    /// Draws the node positions: sink pinned at the corner, the rest
    /// uniform. Two draws per non-sink node, in node order.
    fn sample_positions(&self, rng: &mut SimRng) -> Vec<(f64, f64)> {
        let mut positions = Vec::with_capacity(self.nodes);
        positions.push((0.0, 0.0));
        for _ in 1..self.nodes {
            positions.push((
                rng.sample_uniform(0.0, self.width),
                rng.sample_uniform(0.0, self.height),
            ));
        }
        positions
    }

    /// The all-pairs reference sampler the grid version must match
    /// byte-for-byte; kept as the oracle for the equivalence test.
    #[cfg(test)]
    fn sample_all_pairs(&self, rng: &mut SimRng) -> Topology {
        let positions = self.sample_positions(rng);
        let mut topo = Topology::with_nodes(self.nodes);
        for i in 0..self.nodes {
            for j in (i + 1)..self.nodes {
                let (xi, yi) = positions[i];
                let (xj, yj) = positions[j];
                let d2 = (xi - xj).powi(2) + (yi - yj).powi(2);
                if d2 <= self.range * self.range {
                    topo.add_edge(NodeId(i as u32), NodeId(j as u32));
                }
            }
        }
        topo.set_positions(positions);
        topo
    }

    /// Samples until a connected topology appears, up to `attempts`
    /// resamples.
    ///
    /// # Errors
    ///
    /// Returns the number of attempts made if none were connected (raise
    /// the density or range).
    pub fn sample_connected(&self, rng: &mut SimRng, attempts: usize) -> Result<Topology, usize> {
        for _ in 0..attempts {
            let topo = self.sample(rng);
            if topo.is_connected() {
                return Ok(topo);
            }
        }
        Err(attempts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempriv_sim::rng::RngFactory;

    fn rng() -> SimRng {
        RngFactory::new(2024).stream(0)
    }

    #[test]
    fn sample_respects_node_count_and_positions() {
        let spec = GeometricDeployment::new(10.0, 10.0, 40, 3.0);
        let topo = spec.sample(&mut rng());
        assert_eq!(topo.len(), 40);
        assert_eq!(topo.position(NodeId(0)), Some((0.0, 0.0)));
        for node in topo.nodes() {
            let (x, y) = topo.position(node).unwrap();
            assert!((0.0..=10.0).contains(&x) && (0.0..=10.0).contains(&y));
        }
    }

    #[test]
    fn edges_respect_range() {
        let spec = GeometricDeployment::new(10.0, 10.0, 30, 2.5);
        let topo = spec.sample(&mut rng());
        for a in topo.nodes() {
            let (xa, ya) = topo.position(a).unwrap();
            for &b in topo.neighbors(a) {
                let (xb, yb) = topo.position(b).unwrap();
                let d = ((xa - xb).powi(2) + (ya - yb).powi(2)).sqrt();
                assert!(d <= 2.5 + 1e-9, "edge {a}-{b} spans {d}");
            }
        }
    }

    #[test]
    fn dense_fields_connect() {
        let spec = GeometricDeployment::new(8.0, 8.0, 60, 3.0);
        let topo = spec
            .sample_connected(&mut rng(), 20)
            .expect("dense field should connect quickly");
        assert!(topo.is_connected());
    }

    #[test]
    fn sparse_fields_report_failure() {
        let spec = GeometricDeployment::new(100.0, 100.0, 10, 1.0);
        let err = spec.sample_connected(&mut rng(), 5).unwrap_err();
        assert_eq!(err, 5);
    }

    #[test]
    fn sampling_is_deterministic_per_stream() {
        let spec = GeometricDeployment::new(10.0, 10.0, 25, 3.0);
        let a = spec.sample(&mut RngFactory::new(5).stream(1));
        let b = spec.sample(&mut RngFactory::new(5).stream(1));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = GeometricDeployment::new(1.0, 1.0, 0, 1.0);
    }

    #[test]
    fn grid_sampler_matches_all_pairs_reference() {
        // Several shapes, including range > side (single cell) and a
        // field much wider than tall.
        let specs = [
            GeometricDeployment::new(10.0, 10.0, 200, 2.0),
            GeometricDeployment::new(3.0, 3.0, 50, 4.0),
            GeometricDeployment::new(40.0, 5.0, 300, 1.5),
            GeometricDeployment::new(22.3, 22.3, 500, 2.0),
        ];
        for (k, spec) in specs.iter().enumerate() {
            let grid = spec.sample(&mut RngFactory::new(99).stream(k as u64));
            let naive = spec.sample_all_pairs(&mut RngFactory::new(99).stream(k as u64));
            assert_eq!(grid, naive, "spec {k}: grid sampler diverged");
        }
    }
}

//! Link (PHY/MAC abstraction) model.
//!
//! The paper's simulator "simplified the PHY- and MAC-level protocols by
//! adopting a constant transmission delay (i.e. 1 time unit) from any node
//! to its neighbors" (§5.2). [`LinkModel`] reproduces that abstraction and
//! additionally supports independent per-transmission loss for
//! failure-injection experiments.

use serde::{Deserialize, Serialize};
use tempriv_sim::rng::SimRng;
use tempriv_sim::time::SimDuration;

/// Per-hop transmission behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    delay: SimDuration,
    loss_probability: f64,
    #[serde(default)]
    jitter: f64,
}

impl LinkModel {
    /// A lossless link with the given constant delay.
    #[must_use]
    pub const fn constant(delay: SimDuration) -> Self {
        LinkModel {
            delay,
            loss_probability: 0.0,
            jitter: 0.0,
        }
    }

    /// The paper's default: 1 time unit per hop, lossless.
    #[must_use]
    pub fn paper_default() -> Self {
        LinkModel::constant(SimDuration::from_units(1.0))
    }

    /// Adds independent per-transmission loss.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)` (a link losing everything cannot
    /// deliver any experiment).
    #[must_use]
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "loss probability must be in [0,1), got {p}"
        );
        self.loss_probability = p;
        self
    }

    /// The constant transmission delay τ.
    #[must_use]
    pub const fn delay(&self) -> SimDuration {
        self.delay
    }

    /// The per-transmission loss probability.
    #[must_use]
    pub const fn loss_probability(&self) -> f64 {
        self.loss_probability
    }

    /// Adds uniform per-transmission MAC jitter: each hop takes
    /// `delay + Uniform[0, jitter)` — a sensitivity knob for the paper's
    /// constant-τ MAC abstraction (contention and backoff in real CSMA
    /// stacks make per-hop times noisy).
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is negative or not finite.
    #[must_use]
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        assert!(
            jitter.is_finite() && jitter >= 0.0,
            "jitter must be non-negative, got {jitter}"
        );
        self.jitter = jitter;
        self
    }

    /// The uniform MAC jitter width.
    #[must_use]
    pub const fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Mean per-hop transmission time, `τ + jitter/2` — what a
    /// deployment-aware adversary uses for its estimates.
    #[must_use]
    pub fn mean_delay(&self) -> f64 {
        self.delay.as_units() + self.jitter / 2.0
    }

    /// Attempts one transmission: `Some(per-hop time)` if the frame
    /// survives, `None` if it is lost.
    pub fn transmit(&self, rng: &mut SimRng) -> Option<SimDuration> {
        if self.loss_probability > 0.0 && rng.sample_bool(self.loss_probability) {
            return None;
        }
        let extra = if self.jitter > 0.0 {
            SimDuration::from_units(rng.sample_uniform(0.0, self.jitter))
        } else {
            SimDuration::ZERO
        };
        Some(self.delay + extra)
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempriv_sim::rng::RngFactory;

    #[test]
    fn default_matches_paper() {
        let l = LinkModel::default();
        assert_eq!(l.delay(), SimDuration::from_units(1.0));
        assert_eq!(l.loss_probability(), 0.0);
    }

    #[test]
    fn lossless_link_always_delivers() {
        let l = LinkModel::constant(SimDuration::from_units(2.5));
        let mut rng = RngFactory::new(1).stream(0);
        for _ in 0..100 {
            assert_eq!(l.transmit(&mut rng), Some(SimDuration::from_units(2.5)));
        }
    }

    #[test]
    fn lossy_link_drops_at_configured_rate() {
        let l = LinkModel::paper_default().with_loss(0.3);
        let mut rng = RngFactory::new(2).stream(0);
        let n = 100_000;
        let lost = (0..n).filter(|_| l.transmit(&mut rng).is_none()).count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "observed loss {rate}");
    }

    #[test]
    fn jitter_spreads_per_hop_times() {
        let l = LinkModel::paper_default().with_jitter(0.5);
        assert_eq!(l.jitter(), 0.5);
        assert!((l.mean_delay() - 1.25).abs() < 1e-12);
        let mut rng = RngFactory::new(9).stream(0);
        let mut total = 0.0;
        for _ in 0..20_000 {
            let d = l.transmit(&mut rng).unwrap().as_units();
            assert!((1.0..1.5).contains(&d), "delay {d}");
            total += d;
        }
        assert!((total / 20_000.0 - 1.25).abs() < 0.01);
    }

    #[test]
    fn zero_jitter_stays_constant() {
        let l = LinkModel::paper_default().with_jitter(0.0);
        let mut rng = RngFactory::new(10).stream(0);
        assert_eq!(l.transmit(&mut rng), Some(SimDuration::from_units(1.0)));
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn certain_loss_rejected() {
        let _ = LinkModel::paper_default().with_loss(1.0);
    }
}

//! Deployment topologies.
//!
//! A [`Topology`] is an undirected connectivity graph over sensor nodes,
//! optionally with planar positions (used by the mobility model and by
//! grid deployments like the paper's Figure 1 field).

use serde::{Deserialize, Serialize};

use crate::ids::NodeId;

/// An undirected sensor connectivity graph.
///
/// # Examples
///
/// ```
/// use tempriv_net::topology::Topology;
/// use tempriv_net::ids::NodeId;
///
/// let line = Topology::line(4);
/// assert_eq!(line.len(), 4);
/// assert_eq!(line.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    adjacency: Vec<Vec<NodeId>>,
    positions: Option<Vec<(f64, f64)>>,
}

impl Topology {
    /// Creates a topology with `n` isolated nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_nodes(n: usize) -> Self {
        assert!(n > 0, "a topology needs at least one node");
        Topology {
            adjacency: vec![Vec::new(); n],
            positions: None,
        }
    }

    /// A path topology `0 — 1 — ⋯ — (n−1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn line(n: usize) -> Self {
        let mut t = Topology::with_nodes(n);
        for i in 1..n {
            t.add_edge(NodeId(i as u32 - 1), NodeId(i as u32));
        }
        t.positions = Some((0..n).map(|i| (i as f64, 0.0)).collect());
        t
    }

    /// A `width × height` 4-connected grid (the paper's Figure 1 field is
    /// such a grid with the sink at a corner). Node `(x, y)` has id
    /// `y·width + x` and position `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn grid(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        let mut t = Topology::with_nodes(width * height);
        let id = |x: usize, y: usize| NodeId((y * width + x) as u32);
        for y in 0..height {
            for x in 0..width {
                if x + 1 < width {
                    t.add_edge(id(x, y), id(x + 1, y));
                }
                if y + 1 < height {
                    t.add_edge(id(x, y), id(x, y + 1));
                }
            }
        }
        t.positions = Some(
            (0..width * height)
                .map(|i| ((i % width) as f64, (i / width) as f64))
                .collect(),
        );
        t
    }

    /// Adds an undirected edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range, the endpoints coincide,
    /// or the edge already exists.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        assert!(a != b, "self-loops are not allowed ({a})");
        assert!(
            a.index() < self.adjacency.len() && b.index() < self.adjacency.len(),
            "edge endpoints out of range: {a}, {b}"
        );
        assert!(
            !self.adjacency[a.index()].contains(&b),
            "duplicate edge {a} — {b}"
        );
        self.adjacency[a.index()].push(b);
        self.adjacency[b.index()].push(a);
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// `true` if the topology has no nodes (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Neighbors of `node`, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adjacency[node.index()]
    }

    /// Planar position of `node`, if the topology carries positions.
    #[must_use]
    pub fn position(&self, node: NodeId) -> Option<(f64, f64)> {
        self.positions
            .as_ref()
            .and_then(|p| p.get(node.index()))
            .copied()
    }

    /// Attaches planar positions (one per node).
    ///
    /// # Panics
    ///
    /// Panics if the slice length does not match the node count.
    pub fn set_positions(&mut self, positions: Vec<(f64, f64)>) {
        assert_eq!(
            positions.len(),
            self.adjacency.len(),
            "one position per node required"
        );
        self.positions = Some(positions);
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adjacency.len() as u32).map(NodeId)
    }

    /// `true` if every node can reach every other node.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        let n = self.adjacency.len();
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(at) = stack.pop() {
            for nb in &self.adjacency[at] {
                if !seen[nb.index()] {
                    seen[nb.index()] = true;
                    count += 1;
                    stack.push(nb.index());
                }
            }
        }
        count == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_topology_shape() {
        let t = Topology::line(5);
        assert_eq!(t.len(), 5);
        assert_eq!(t.edge_count(), 4);
        assert_eq!(t.neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(t.neighbors(NodeId(2)), &[NodeId(1), NodeId(3)]);
        assert!(t.is_connected());
        assert_eq!(t.position(NodeId(3)), Some((3.0, 0.0)));
    }

    #[test]
    fn grid_topology_shape() {
        let t = Topology::grid(4, 3);
        assert_eq!(t.len(), 12);
        // Edges: horizontal 3*3=9, vertical 4*2=8.
        assert_eq!(t.edge_count(), 17);
        assert!(t.is_connected());
        // Interior node has 4 neighbors.
        assert_eq!(t.neighbors(NodeId(5)).len(), 4);
        // Corner has 2.
        assert_eq!(t.neighbors(NodeId(0)).len(), 2);
        assert_eq!(t.position(NodeId(6)), Some((2.0, 1.0)));
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut t = Topology::with_nodes(4);
        t.add_edge(NodeId(0), NodeId(1));
        t.add_edge(NodeId(2), NodeId(3));
        assert!(!t.is_connected());
    }

    #[test]
    fn nodes_iterator_covers_all() {
        let t = Topology::grid(2, 2);
        let ids: Vec<NodeId> = t.nodes().collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edge_rejected() {
        let mut t = Topology::with_nodes(2);
        t.add_edge(NodeId(0), NodeId(1));
        t.add_edge(NodeId(1), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut t = Topology::with_nodes(2);
        t.add_edge(NodeId(1), NodeId(1));
    }

    #[test]
    #[should_panic(expected = "one position per node")]
    fn wrong_position_count_rejected() {
        let mut t = Topology::with_nodes(3);
        t.set_positions(vec![(0.0, 0.0)]);
    }
}

//! Mobile-asset model for habitat-monitoring workloads.
//!
//! The paper motivates temporal privacy with asset tracking: an animal
//! moves through a sensed field, nearby sensors report it, and an
//! adversary correlating report *times* with sensor *positions* can
//! reconstruct the trajectory. This module provides the synthetic
//! equivalent: a random-waypoint asset over a planar field plus the
//! detection events it triggers in a positioned [`Topology`].

use serde::{Deserialize, Serialize};
use tempriv_sim::rng::SimRng;
use tempriv_sim::time::SimTime;

use crate::ids::NodeId;
use crate::topology::Topology;

/// A random-waypoint mobility model on the rectangle `[0,w] × [0,h]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomWaypoint {
    width: f64,
    height: f64,
    speed: f64,
}

impl RandomWaypoint {
    /// Creates a model over a `width × height` field with the given
    /// constant movement speed (distance per time unit).
    ///
    /// # Panics
    ///
    /// Panics if any argument is non-positive or not finite.
    #[must_use]
    pub fn new(width: f64, height: f64, speed: f64) -> Self {
        for (name, v) in [("width", width), ("height", height), ("speed", speed)] {
            assert!(v.is_finite() && v > 0.0, "{name} must be positive, got {v}");
        }
        RandomWaypoint {
            width,
            height,
            speed,
        }
    }

    /// Generates a trajectory sampled every `sample_interval` time units
    /// for `samples` steps, starting at the field center at time 0.
    ///
    /// # Panics
    ///
    /// Panics if `sample_interval` is non-positive or `samples == 0`.
    #[must_use]
    pub fn trajectory(
        &self,
        samples: usize,
        sample_interval: f64,
        rng: &mut SimRng,
    ) -> Vec<TrackPoint> {
        assert!(samples > 0, "need at least one sample");
        assert!(
            sample_interval.is_finite() && sample_interval > 0.0,
            "sample interval must be positive, got {sample_interval}"
        );
        let mut pos = (self.width / 2.0, self.height / 2.0);
        let mut goal = self.random_point(rng);
        let mut out = Vec::with_capacity(samples);
        for i in 0..samples {
            let t = SimTime::from_units(i as f64 * sample_interval);
            out.push(TrackPoint {
                time: t,
                x: pos.0,
                y: pos.1,
            });
            // Advance toward the goal; pick a new goal on arrival.
            let mut travel = self.speed * sample_interval;
            while travel > 0.0 {
                let (dx, dy) = (goal.0 - pos.0, goal.1 - pos.1);
                let dist = (dx * dx + dy * dy).sqrt();
                if dist <= travel {
                    pos = goal;
                    travel -= dist;
                    goal = self.random_point(rng);
                } else {
                    pos = (pos.0 + dx / dist * travel, pos.1 + dy / dist * travel);
                    travel = 0.0;
                }
            }
        }
        out
    }

    fn random_point(&self, rng: &mut SimRng) -> (f64, f64) {
        (
            rng.sample_uniform(0.0, self.width),
            rng.sample_uniform(0.0, self.height),
        )
    }
}

/// One sampled position on an asset's track.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackPoint {
    /// Sample instant.
    pub time: SimTime,
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

/// A sensing event: `node` observed the asset at `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Detection {
    /// The detecting sensor.
    pub node: NodeId,
    /// When the observation (packet creation) happened.
    pub time: SimTime,
}

/// Maps an asset track to detection events: at each track sample, the
/// nearest positioned sensor within `sensing_range` fires (at most one
/// detection per sample, modelling local leader election among the
/// sensors that hear the same animal).
///
/// # Panics
///
/// Panics if the topology has no positions or `sensing_range` is
/// non-positive or not finite.
#[must_use]
pub fn detections(topology: &Topology, track: &[TrackPoint], sensing_range: f64) -> Vec<Detection> {
    assert!(
        sensing_range.is_finite() && sensing_range > 0.0,
        "sensing range must be positive, got {sensing_range}"
    );
    let mut out = Vec::new();
    for point in track {
        let mut best: Option<(NodeId, f64)> = None;
        for node in topology.nodes() {
            let Some((nx, ny)) = topology.position(node) else {
                panic!("detections requires a positioned topology");
            };
            let d2 = (nx - point.x).powi(2) + (ny - point.y).powi(2);
            if d2 <= sensing_range * sensing_range && best.is_none_or(|(_, bd2)| d2 < bd2) {
                best = Some((node, d2));
            }
        }
        if let Some((node, _)) = best {
            out.push(Detection {
                node,
                time: point.time,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempriv_sim::rng::RngFactory;

    #[test]
    fn trajectory_stays_in_field() {
        let model = RandomWaypoint::new(10.0, 8.0, 1.5);
        let mut rng = RngFactory::new(3).stream(0);
        let track = model.trajectory(500, 1.0, &mut rng);
        assert_eq!(track.len(), 500);
        for p in &track {
            assert!((0.0..=10.0).contains(&p.x), "x = {}", p.x);
            assert!((0.0..=8.0).contains(&p.y), "y = {}", p.y);
        }
    }

    #[test]
    fn trajectory_respects_speed() {
        let model = RandomWaypoint::new(100.0, 100.0, 2.0);
        let mut rng = RngFactory::new(4).stream(0);
        let track = model.trajectory(200, 0.5, &mut rng);
        for w in track.windows(2) {
            let d = ((w[1].x - w[0].x).powi(2) + (w[1].y - w[0].y).powi(2)).sqrt();
            assert!(d <= 2.0 * 0.5 + 1e-9, "moved {d} in half a unit");
        }
    }

    #[test]
    fn trajectory_is_deterministic_per_seed() {
        let model = RandomWaypoint::new(10.0, 10.0, 1.0);
        let a = model.trajectory(50, 1.0, &mut RngFactory::new(5).stream(0));
        let b = model.trajectory(50, 1.0, &mut RngFactory::new(5).stream(0));
        assert_eq!(a, b);
    }

    #[test]
    fn detections_pick_nearest_in_range() {
        let topo = Topology::grid(3, 3); // positions (0..2, 0..2)
        let track = vec![
            TrackPoint {
                time: SimTime::from_units(0.0),
                x: 0.1,
                y: 0.1,
            },
            TrackPoint {
                time: SimTime::from_units(1.0),
                x: 1.9,
                y: 1.9,
            },
            TrackPoint {
                time: SimTime::from_units(2.0),
                x: -50.0,
                y: -50.0, // out of everyone's range
            },
        ];
        let dets = detections(&topo, &track, 1.0);
        assert_eq!(dets.len(), 2);
        assert_eq!(dets[0].node, NodeId(0)); // (0,0)
        assert_eq!(dets[1].node, NodeId(8)); // (2,2)
    }

    #[test]
    fn moving_asset_triggers_multiple_sensors() {
        let topo = Topology::grid(6, 6);
        let model = RandomWaypoint::new(5.0, 5.0, 1.0);
        let mut rng = RngFactory::new(6).stream(0);
        let track = model.trajectory(300, 1.0, &mut rng);
        let dets = detections(&topo, &track, 1.0);
        let distinct: std::collections::HashSet<NodeId> = dets.iter().map(|d| d.node).collect();
        assert!(
            distinct.len() > 5,
            "asset should cross several cells, saw {}",
            distinct.len()
        );
    }

    #[test]
    #[should_panic(expected = "positioned topology")]
    fn unpositioned_topology_rejected() {
        let topo = Topology::with_nodes(2);
        let track = vec![TrackPoint {
            time: SimTime::ZERO,
            x: 0.0,
            y: 0.0,
        }];
        let _ = detections(&topo, &track, 1.0);
    }
}

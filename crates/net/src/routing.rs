//! Convergecast routing trees.
//!
//! Sensor deployments route every packet hop-by-hop toward a single sink
//! along a routing tree (the paper's §4 network model). We build the tree
//! as the BFS shortest-path forest rooted at the sink, matching min-hop
//! routing protocols like TinyOS MultiHop.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::ids::NodeId;
use crate::topology::Topology;

/// A routing tree: every node's next hop toward the sink.
///
/// # Examples
///
/// ```
/// use tempriv_net::routing::RoutingTree;
/// use tempriv_net::topology::Topology;
/// use tempriv_net::ids::NodeId;
///
/// let grid = Topology::grid(3, 3);
/// let tree = RoutingTree::shortest_path(&grid, NodeId(0)).unwrap();
/// // Opposite corner of a 3x3 grid is 4 hops from the sink.
/// assert_eq!(tree.hops(NodeId(8)), Some(4));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingTree {
    sink: NodeId,
    next_hop: Vec<Option<NodeId>>,
    hops: Vec<Option<u32>>,
}

impl RoutingTree {
    /// Builds the min-hop routing tree toward `sink` by breadth-first
    /// search. Ties are broken by neighbor insertion order, making the
    /// tree deterministic for a given topology construction.
    ///
    /// # Errors
    ///
    /// Returns [`RoutingError::SinkOutOfRange`] if `sink` is not a node of
    /// `topology`, or [`RoutingError::Unreachable`] listing nodes with no
    /// path to the sink.
    pub fn shortest_path(topology: &Topology, sink: NodeId) -> Result<Self, RoutingError> {
        let n = topology.len();
        if sink.index() >= n {
            return Err(RoutingError::SinkOutOfRange { sink });
        }
        let mut next_hop: Vec<Option<NodeId>> = vec![None; n];
        let mut hops: Vec<Option<u32>> = vec![None; n];
        hops[sink.index()] = Some(0);
        let mut queue = VecDeque::from([sink]);
        while let Some(at) = queue.pop_front() {
            let d = hops[at.index()].expect("dequeued nodes have depths");
            for &nb in topology.neighbors(at) {
                if hops[nb.index()].is_none() {
                    hops[nb.index()] = Some(d + 1);
                    next_hop[nb.index()] = Some(at);
                    queue.push_back(nb);
                }
            }
        }
        let unreachable: Vec<NodeId> = topology
            .nodes()
            .filter(|node| hops[node.index()].is_none())
            .collect();
        if !unreachable.is_empty() {
            return Err(RoutingError::Unreachable { nodes: unreachable });
        }
        Ok(RoutingTree {
            sink,
            next_hop,
            hops,
        })
    }

    /// Builds a routing tree directly from explicit parent pointers
    /// (`None` exactly for the sink). Used by synthetic layouts that do
    /// not go through a [`Topology`].
    ///
    /// # Errors
    ///
    /// Returns [`RoutingError::Malformed`] if the pointers do not form a
    /// tree rooted at `sink` (cycles, wrong root, dangling parents).
    pub fn from_parents(sink: NodeId, parents: Vec<Option<NodeId>>) -> Result<Self, RoutingError> {
        let n = parents.len();
        if sink.index() >= n || parents[sink.index()].is_some() {
            return Err(RoutingError::Malformed {
                reason: "sink must exist and have no parent".into(),
            });
        }
        let mut hops: Vec<Option<u32>> = vec![None; n];
        hops[sink.index()] = Some(0);
        for start in 0..n {
            if hops[start].is_some() {
                continue;
            }
            // Walk to a node of known depth, then backfill.
            let mut path = Vec::new();
            let mut at = start;
            while hops[at].is_none() {
                path.push(at);
                let Some(parent) = parents[at] else {
                    return Err(RoutingError::Malformed {
                        reason: format!("node n{at} has no parent and is not the sink"),
                    });
                };
                if parent.index() >= n {
                    return Err(RoutingError::Malformed {
                        reason: format!("node n{at} points to nonexistent parent {parent}"),
                    });
                }
                at = parent.index();
                if path.contains(&at) {
                    return Err(RoutingError::Malformed {
                        reason: format!("cycle through node n{at}"),
                    });
                }
            }
            let mut d = hops[at].expect("loop exit condition");
            for &node in path.iter().rev() {
                d += 1;
                hops[node] = Some(d);
            }
        }
        Ok(RoutingTree {
            sink,
            next_hop: parents,
            hops,
        })
    }

    /// The sink all routes converge on.
    #[must_use]
    pub const fn sink(&self) -> NodeId {
        self.sink
    }

    /// Number of nodes covered by the tree.
    #[must_use]
    pub fn len(&self) -> usize {
        self.next_hop.len()
    }

    /// `true` if the tree covers no nodes (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.next_hop.is_empty()
    }

    /// Next hop of `node` toward the sink (`None` for the sink itself).
    #[must_use]
    pub fn next_hop(&self, node: NodeId) -> Option<NodeId> {
        self.next_hop.get(node.index()).copied().flatten()
    }

    /// Hop count from `node` to the sink (`Some(0)` for the sink).
    #[must_use]
    pub fn hops(&self, node: NodeId) -> Option<u32> {
        self.hops.get(node.index()).copied().flatten()
    }

    /// Full path from `node` to the sink, inclusive of both endpoints.
    #[must_use]
    pub fn path(&self, node: NodeId) -> Vec<NodeId> {
        let mut path = vec![node];
        let mut at = node;
        while let Some(next) = self.next_hop(at) {
            path.push(next);
            at = next;
        }
        path
    }

    /// Number of routing children of `node` (nodes whose next hop is it).
    #[must_use]
    pub fn child_count(&self, node: NodeId) -> usize {
        self.next_hop.iter().filter(|&&nh| nh == Some(node)).count()
    }
}

/// Errors from routing-tree construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RoutingError {
    /// The requested sink id is not a node of the topology.
    SinkOutOfRange {
        /// The offending sink id.
        sink: NodeId,
    },
    /// Some nodes cannot reach the sink.
    Unreachable {
        /// The disconnected nodes.
        nodes: Vec<NodeId>,
    },
    /// Explicit parent pointers do not form a tree.
    Malformed {
        /// Human-readable cause.
        reason: String,
    },
}

impl core::fmt::Display for RoutingError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RoutingError::SinkOutOfRange { sink } => {
                write!(f, "sink {sink} is not a node of the topology")
            }
            RoutingError::Unreachable { nodes } => {
                write!(f, "{} node(s) cannot reach the sink", nodes.len())
            }
            RoutingError::Malformed { reason } => {
                write!(f, "parent pointers do not form a routing tree: {reason}")
            }
        }
    }
}

impl std::error::Error for RoutingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_routes_everything_to_sink() {
        let t = Topology::line(5);
        let tree = RoutingTree::shortest_path(&t, NodeId(0)).unwrap();
        assert_eq!(tree.sink(), NodeId(0));
        assert_eq!(tree.hops(NodeId(4)), Some(4));
        assert_eq!(tree.hops(NodeId(0)), Some(0));
        assert_eq!(tree.next_hop(NodeId(3)), Some(NodeId(2)));
        assert_eq!(tree.next_hop(NodeId(0)), None);
        assert_eq!(
            tree.path(NodeId(3)),
            vec![NodeId(3), NodeId(2), NodeId(1), NodeId(0)]
        );
    }

    #[test]
    fn grid_hop_counts_are_manhattan() {
        let t = Topology::grid(5, 5);
        let tree = RoutingTree::shortest_path(&t, NodeId(0)).unwrap();
        for y in 0..5u32 {
            for x in 0..5u32 {
                let id = NodeId(y * 5 + x);
                assert_eq!(tree.hops(id), Some(x + y), "node {id}");
            }
        }
    }

    #[test]
    fn paths_shrink_hop_by_hop() {
        let t = Topology::grid(6, 4);
        let tree = RoutingTree::shortest_path(&t, NodeId(23)).unwrap();
        for node in t.nodes() {
            let path = tree.path(node);
            assert_eq!(path.len() as u32, tree.hops(node).unwrap() + 1);
            for w in path.windows(2) {
                assert_eq!(tree.hops(w[0]).unwrap(), tree.hops(w[1]).unwrap() + 1);
            }
            assert_eq!(*path.last().unwrap(), NodeId(23));
        }
    }

    #[test]
    fn unreachable_nodes_reported() {
        let mut t = Topology::with_nodes(4);
        t.add_edge(NodeId(0), NodeId(1));
        let err = RoutingTree::shortest_path(&t, NodeId(0)).unwrap_err();
        match err {
            RoutingError::Unreachable { nodes } => {
                assert_eq!(nodes, vec![NodeId(2), NodeId(3)]);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn sink_out_of_range_reported() {
        let t = Topology::line(3);
        let err = RoutingTree::shortest_path(&t, NodeId(9)).unwrap_err();
        assert!(matches!(err, RoutingError::SinkOutOfRange { .. }));
    }

    #[test]
    fn from_parents_builds_depths() {
        // 0 <- 1 <- 2, 0 <- 3
        let tree = RoutingTree::from_parents(
            NodeId(0),
            vec![None, Some(NodeId(0)), Some(NodeId(1)), Some(NodeId(0))],
        )
        .unwrap();
        assert_eq!(tree.hops(NodeId(2)), Some(2));
        assert_eq!(tree.hops(NodeId(3)), Some(1));
        assert_eq!(tree.child_count(NodeId(0)), 2);
        assert_eq!(tree.child_count(NodeId(2)), 0);
    }

    #[test]
    fn from_parents_rejects_cycles() {
        let err =
            RoutingTree::from_parents(NodeId(0), vec![None, Some(NodeId(2)), Some(NodeId(1))])
                .unwrap_err();
        assert!(matches!(err, RoutingError::Malformed { .. }));
    }

    #[test]
    fn from_parents_rejects_parentless_non_sink() {
        let err = RoutingTree::from_parents(NodeId(0), vec![None, None]).unwrap_err();
        assert!(matches!(err, RoutingError::Malformed { .. }));
    }

    #[test]
    fn bfs_tie_break_is_deterministic() {
        let t = Topology::grid(3, 3);
        let a = RoutingTree::shortest_path(&t, NodeId(4)).unwrap();
        let b = RoutingTree::shortest_path(&t, NodeId(4)).unwrap();
        assert_eq!(a, b);
    }
}

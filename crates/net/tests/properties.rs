//! Property-based tests for the network substrate.

use proptest::prelude::*;
use tempriv_net::convergecast::Convergecast;
use tempriv_net::ids::{FlowId, NodeId};
use tempriv_net::routing::RoutingTree;
use tempriv_net::topology::Topology;
use tempriv_net::traffic::TrafficModel;
use tempriv_sim::rng::RngFactory;
use tempriv_sim::time::SimTime;

proptest! {
    /// BFS routing on any grid yields Manhattan hop counts and paths that
    /// shrink by exactly one hop per step.
    #[test]
    fn grid_routing_is_min_hop(w in 1usize..10, h in 1usize..10, sx in 0usize..10, sy in 0usize..10) {
        let sx = sx.min(w - 1);
        let sy = sy.min(h - 1);
        let topo = Topology::grid(w, h);
        let sink = NodeId((sy * w + sx) as u32);
        let tree = RoutingTree::shortest_path(&topo, sink).unwrap();
        for y in 0..h {
            for x in 0..w {
                let node = NodeId((y * w + x) as u32);
                let manhattan = (x.abs_diff(sx) + y.abs_diff(sy)) as u32;
                prop_assert_eq!(tree.hops(node), Some(manhattan));
                let path = tree.path(node);
                prop_assert_eq!(path.len() as u32, manhattan + 1);
                for pair in path.windows(2) {
                    prop_assert_eq!(
                        tree.hops(pair[0]).unwrap(),
                        tree.hops(pair[1]).unwrap() + 1
                    );
                }
            }
        }
    }

    /// Convergecast layouts honor every requested hop count and share
    /// exactly the trunk.
    #[test]
    fn convergecast_respects_spec(
        trunk in 0u32..12,
        extra in prop::collection::vec(1u32..20, 1..6),
    ) {
        let flows: Vec<u32> = extra.iter().map(|e| trunk + e).collect();
        let layout = Convergecast::builder()
            .trunk_hops(trunk)
            .flows(flows.iter().copied())
            .build()
            .unwrap();
        for (i, &h) in flows.iter().enumerate() {
            let flow = FlowId(i as u32);
            prop_assert_eq!(layout.hop_count(flow), h);
            prop_assert_eq!(layout.routing().hops(layout.source(flow)), Some(h));
        }
        // Every trunk node carries all flows.
        for t in 1..=trunk {
            prop_assert_eq!(layout.flows_through(NodeId(t)), flows.len());
        }
        // Node count: sink + trunk + sum of private chains.
        let expected = 1 + trunk + flows.iter().map(|&h| h - trunk).sum::<u32>();
        prop_assert_eq!(layout.len() as u32, expected);
    }

    /// Every traffic model produces positive gaps with the right mean.
    #[test]
    fn traffic_gaps_positive_with_correct_mean(interval in 0.1f64..50.0, seed in any::<u64>()) {
        let models = [
            TrafficModel::periodic(interval),
            TrafficModel::periodic_jitter(interval, 0.3),
            TrafficModel::poisson(1.0 / interval),
        ];
        for model in models {
            let mut rng = RngFactory::new(seed).stream(0);
            let n = 2_000;
            let mut total = 0.0;
            for _ in 0..n {
                let gap = model.next_interarrival(&mut rng).as_units();
                prop_assert!(gap >= 0.0);
                total += gap;
            }
            let mean = total / n as f64;
            prop_assert!(
                (mean - interval).abs() < 0.1 * interval,
                "{model:?}: mean {mean} vs {interval}"
            );
        }
    }

    /// Schedules are sorted and strictly positive-length for periodic
    /// and Poisson models.
    #[test]
    fn schedules_are_ordered(interval in 0.1f64..20.0, count in 1usize..200, seed in any::<u64>()) {
        let model = TrafficModel::poisson(1.0 / interval);
        let mut rng = RngFactory::new(seed).stream(1);
        let times = model.schedule(SimTime::ZERO, count, &mut rng);
        prop_assert_eq!(times.len(), count);
        for w in times.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert!(times[0] > SimTime::ZERO);
    }

    /// Random connected topologies route everything: add a spanning path
    /// plus arbitrary chords, then check every node reaches the sink.
    #[test]
    fn chorded_path_topologies_fully_route(
        n in 2usize..40,
        chords in prop::collection::vec((0usize..40, 0usize..40), 0..30),
    ) {
        let mut topo = Topology::line(n);
        for &(a, b) in &chords {
            let a = a % n;
            let b = b % n;
            if a != b {
                let (lo, hi) = (a.min(b) as u32, a.max(b) as u32);
                // Skip existing line edges and duplicates.
                if hi - lo > 1
                    && !topo.neighbors(NodeId(lo)).contains(&NodeId(hi))
                {
                    topo.add_edge(NodeId(lo), NodeId(hi));
                }
            }
        }
        let tree = RoutingTree::shortest_path(&topo, NodeId(0)).unwrap();
        for node in topo.nodes() {
            let hops = tree.hops(node).unwrap();
            prop_assert!(hops as usize <= n);
            prop_assert_eq!(tree.path(node).len() as u32, hops + 1);
        }
    }
}

//! # temporal-privacy — facade crate
//!
//! A faithful, from-scratch Rust reproduction of *Temporal Privacy in
//! Wireless Sensor Networks* (Kamat, Xu, Trappe, Zhang — ICDCS 2007).
//!
//! Temporal privacy asks: can an eavesdropper at the data sink infer
//! **when** a sensor reading was created from **when** its packet
//! arrives? The paper's answer is to buffer packets for random
//! (exponential) delays at every hop, formalizes the leakage as the
//! mutual information `I(X; X + Y)`, analyzes the buffer cost with
//! M/M/∞ / M/M/k/k queueing, and proposes **RCAD** — preempt the packet
//! with the shortest remaining delay when a buffer fills, instead of
//! dropping.
//!
//! This crate re-exports the five member crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `tempriv-core` | RCAD, delay plans, adversaries, the network simulation |
//! | [`net`] | `tempriv-net` | packets, topologies, routing, traffic, mobility |
//! | [`queueing`] | `tempriv-queueing` | Erlang loss, M/M/∞, M/M/k/k, tandem/tree models |
//! | [`infotheory`] | `tempriv-infotheory` | entropies, mutual information, leakage bounds |
//! | [`sim`] | `tempriv-sim` | the deterministic discrete-event kernel |
//!
//! # Quick start
//!
//! ```
//! use temporal_privacy::core::{evaluate_adversary, BaselineAdversary, ExperimentConfig};
//! use temporal_privacy::net::FlowId;
//!
//! // The paper's evaluation network, scaled down for a doctest.
//! let mut cfg = ExperimentConfig::paper_default();
//! cfg.packets_per_source = 200;
//! let sim = cfg.build()?;
//! let outcome = sim.run();
//! let report = evaluate_adversary(&outcome, &BaselineAdversary, &sim.adversary_knowledge());
//! println!(
//!     "adversary MSE on flow S1: {:.0} time-units^2 at mean latency {:.0}",
//!     report.mse(FlowId(0)),
//!     outcome.flows[0].latency.mean(),
//! );
//! # Ok::<(), temporal_privacy::core::ConfigError>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment index and measured results.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub use tempriv_core as core;
pub use tempriv_infotheory as infotheory;
pub use tempriv_net as net;
pub use tempriv_queueing as queueing;
pub use tempriv_sim as sim;

//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde`'s value-tree data model, without `syn`/`quote`
//! (unavailable offline). The parser covers the item shapes used in this
//! workspace:
//!
//! * structs with named fields, tuple structs, unit structs;
//! * enums with unit, newtype/tuple, and struct variants
//!   (externally-tagged representation, like upstream serde);
//! * the container attribute `#[serde(transparent)]` and the field
//!   attribute `#[serde(default)]`;
//! * `Option<T>` fields deserialize to `None` when missing.
//!
//! Generic type parameters are intentionally unsupported (nothing in the
//! workspace derives on a generic type); the macro panics with a clear
//! message if it meets one.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// A tiny AST
// ---------------------------------------------------------------------------

struct Field {
    name: String, // positional fields use their index as the name
    is_option: bool,
    has_default: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum ItemShape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    transparent: bool,
    shape: ItemShape,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Attrs {
    transparent: bool,
    default: bool,
}

/// Consumes leading attributes, returning any serde markers found.
fn take_attrs(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> Attrs {
    let mut attrs = Attrs {
        transparent: false,
        default: false,
    };
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                let Some(TokenTree::Group(g)) = tokens.next() else {
                    panic!("expected attribute body after `#`");
                };
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(name)) = inner.first() {
                    if name.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            for t in args.stream() {
                                if let TokenTree::Ident(word) = t {
                                    match word.to_string().as_str() {
                                        "transparent" => attrs.transparent = true,
                                        "default" => attrs.default = true,
                                        other => panic!(
                                            "vendored serde_derive: unsupported serde attribute `{other}`"
                                        ),
                                    }
                                }
                            }
                        }
                    }
                }
            }
            _ => return attrs,
        }
    }
}

/// Consumes an optional visibility qualifier (`pub`, `pub(crate)`, ...).
fn take_visibility(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if let Some(TokenTree::Ident(id)) = tokens.peek() {
        if id.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

/// Consumes type tokens up to a top-level `,`, reporting whether the type
/// is `Option<...>` (the last path segment before the first `<`).
fn take_type(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut angle_depth = 0u32;
    let mut last_ident = String::new();
    let mut is_option = false;
    let mut seen_angle = false;
    while let Some(tt) = tokens.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
            TokenTree::Punct(p) if p.as_char() == '<' => {
                if angle_depth == 0 && !seen_angle && last_ident == "Option" {
                    is_option = true;
                }
                seen_angle = true;
                angle_depth += 1;
                tokens.next();
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
                tokens.next();
            }
            TokenTree::Ident(id) => {
                last_ident = id.to_string();
                tokens.next();
            }
            _ => {
                tokens.next();
            }
        }
    }
    is_option
}

/// Parses `name: Type` fields from the body of a braced group.
fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let mut tokens = group.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let attrs = take_attrs(&mut tokens);
        take_visibility(&mut tokens);
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            break;
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        let is_option = take_type(&mut tokens);
        fields.push(Field {
            name: name.to_string(),
            is_option,
            has_default: attrs.default,
        });
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            other => panic!("expected `,` between fields, found {other:?}"),
        }
    }
    fields
}

/// Counts the fields of a tuple struct/variant body.
fn count_tuple_fields(group: TokenStream) -> usize {
    let mut tokens = group.into_iter().peekable();
    let mut count = 0;
    loop {
        let _ = take_attrs(&mut tokens);
        take_visibility(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        take_type(&mut tokens);
        count += 1;
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            other => panic!("expected `,` between tuple fields, found {other:?}"),
        }
    }
    count
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut tokens = group.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let _ = take_attrs(&mut tokens);
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            break;
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let TokenTree::Group(g) = tokens.next().unwrap() else {
                    unreachable!()
                };
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let TokenTree::Group(g) = tokens.next().unwrap() else {
                    unreachable!()
                };
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '=' {
                tokens.next();
                while let Some(tt) = tokens.peek() {
                    match tt {
                        TokenTree::Punct(p) if p.as_char() == ',' => break,
                        _ => {
                            tokens.next();
                        }
                    }
                }
            }
        }
        variants.push(Variant {
            name: name.to_string(),
            shape,
        });
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            other => panic!("expected `,` between variants, found {other:?}"),
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    let attrs = take_attrs(&mut tokens);
    take_visibility(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let Some(TokenTree::Ident(name)) = tokens.next() else {
        panic!("expected a type name after `{kind}`");
    };
    let name = name.to_string();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic type `{name}`");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemShape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemShape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemShape::UnitStruct,
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemShape::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body for `{name}`, found {other:?}"),
        },
        other => panic!("cannot derive serde traits for `{other} {name}`"),
    };
    Item {
        name,
        transparent: attrs.transparent,
        shape,
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const VALUE: &str = "::serde::value::Value";
const ERROR: &str = "::serde::value::Error";

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        ItemShape::NamedStruct(fields) => {
            if item.transparent {
                let f = &fields[0].name;
                format!("::serde::Serialize::to_value(&self.{f})")
            } else {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{n}\"), \
                             ::serde::Serialize::to_value(&self.{n}))",
                            n = f.name
                        )
                    })
                    .collect();
                format!("{VALUE}::Map(::std::vec![{}])", entries.join(", "))
            }
        }
        ItemShape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemShape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("{VALUE}::Seq(::std::vec![{}])", items.join(", "))
        }
        ItemShape::UnitStruct => format!("{VALUE}::Null"),
        ItemShape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => {VALUE}::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(x0) => {VALUE}::Map(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::to_value(x0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => {VALUE}::Map(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                 {VALUE}::Seq(::std::vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", "),
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{n}\"), \
                                         ::serde::Serialize::to_value({n}))",
                                        n = f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => {VALUE}::Map(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                 {VALUE}::Map(::std::vec![{entries}]))]),",
                                binds = binds.join(", "),
                                entries = entries.join(", "),
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> {VALUE} {{ {body} }} }}"
    )
}

/// Generates the expression deserializing one named field out of map `src`.
fn named_field_expr(f: &Field, owner: &str) -> String {
    let n = &f.name;
    let missing = if f.has_default {
        "::std::default::Default::default()".to_string()
    } else if f.is_option {
        "::std::option::Option::None".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err({ERROR}::new(\
             \"missing field `{n}` in `{owner}`\"))"
        )
    };
    format!(
        "{n}: match __src.get(\"{n}\") {{ \
         ::std::option::Option::Some(__x) => \
         match ::serde::Deserialize::from_value(__x) {{ \
         ::std::result::Result::Ok(__v) => __v, \
         ::std::result::Result::Err(__e) => \
         return ::std::result::Result::Err(__e.context(\"field `{n}` of `{owner}`\")) }}, \
         ::std::option::Option::None => {missing} }}"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        ItemShape::NamedStruct(fields) => {
            if item.transparent {
                let f = &fields[0].name;
                format!(
                    "::std::result::Result::Ok({name} {{ {f}: \
                     ::serde::Deserialize::from_value(__v)? }})"
                )
            } else {
                let field_exprs: Vec<String> =
                    fields.iter().map(|f| named_field_expr(f, name)).collect();
                format!(
                    "match __v {{ \
                     {VALUE}::Map(_) => {{ let __src = __v; \
                     ::std::result::Result::Ok({name} {{ {fields} }}) }} \
                     __other => ::std::result::Result::Err(\
                     {ERROR}::mismatch(\"map for `{name}`\", __other)) }}",
                    fields = field_exprs.join(", ")
                )
            }
        }
        ItemShape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        ItemShape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __v {{ {VALUE}::Seq(__items) if __items.len() == {n} => \
                 ::std::result::Result::Ok({name}({items})), \
                 __other => ::std::result::Result::Err(\
                 {ERROR}::mismatch(\"{n}-element sequence for `{name}`\", __other)) }}",
                items = items.join(", ")
            )
        }
        ItemShape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        ItemShape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vn}\" => match ::serde::Deserialize::from_value(__inner) {{ \
                             ::std::result::Result::Ok(__x) => \
                             ::std::result::Result::Ok({name}::{vn}(__x)), \
                             ::std::result::Result::Err(__e) => ::std::result::Result::Err(\
                             __e.context(\"variant `{vn}` of `{name}`\")) }},"
                        )),
                        VariantShape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match __inner {{ \
                                 {VALUE}::Seq(__items) if __items.len() == {n} => \
                                 ::std::result::Result::Ok({name}::{vn}({items})), \
                                 __other => ::std::result::Result::Err({ERROR}::mismatch(\
                                 \"{n}-element sequence for variant `{vn}`\", __other)) }},",
                                items = items.join(", ")
                            ))
                        }
                        VariantShape::Struct(fields) => {
                            let field_exprs: Vec<String> = fields
                                .iter()
                                .map(|f| named_field_expr(f, &format!("{name}::{vn}")))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match __inner {{ \
                                 {VALUE}::Map(_) => {{ let __src = __inner; \
                                 ::std::result::Result::Ok({name}::{vn} {{ {fields} }}) }} \
                                 __other => ::std::result::Result::Err({ERROR}::mismatch(\
                                 \"map for variant `{vn}`\", __other)) }},",
                                fields = field_exprs.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{ \
                 {VALUE}::Str(__s) => match __s.as_str() {{ {unit_arms} \
                 __other => ::std::result::Result::Err({ERROR}::new(::std::format!(\
                 \"unknown unit variant `{{__other}}` of `{name}`\"))) }}, \
                 {VALUE}::Map(__entries) if __entries.len() == 1 => {{ \
                 let (__tag, __inner) = &__entries[0]; \
                 match __tag.as_str() {{ {data_arms} \
                 __other => ::std::result::Result::Err({ERROR}::new(::std::format!(\
                 \"unknown variant `{{__other}}` of `{name}`\"))) }} }} \
                 __other => ::std::result::Result::Err({ERROR}::mismatch(\
                 \"variant of `{name}`\", __other)) }}",
                unit_arms = unit_arms.join(" "),
                data_arms = data_arms.join(" "),
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_value(__v: &{VALUE}) -> ::std::result::Result<Self, {ERROR}> {{ {body} }} }}"
    )
}

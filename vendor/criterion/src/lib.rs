//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmark harness exposing the API used by this
//! workspace's benches: [`Criterion::benchmark_group`],
//! `group.sample_size(..)`, `group.bench_function(name, |b| b.iter(..))`,
//! `group.finish()`, and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Instead of upstream's statistical analysis it reports the
//! per-iteration mean over a small, time-bounded batch.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark harness handle passed to registered bench functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        eprintln!("group {name}");
        BenchmarkGroup { sample_size: 10 }
    }
}

/// A named collection of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: `routine` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            report: None,
        };
        routine(&mut bencher);
        match bencher.report {
            Some(mean) => eprintln!("  {name}: {mean:?}/iter"),
            None => eprintln!("  {name}: no measurement (Bencher::iter never called)"),
        }
        self
    }

    /// Ends the group (kept for API compatibility; reporting is live).
    pub fn finish(&mut self) {}
}

/// Times a closure over repeated iterations.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    report: Option<Duration>,
}

impl Bencher {
    /// Measures `routine`, recording the mean wall-clock time per call.
    ///
    /// The batch is bounded both by the group's sample size and a wall
    /// clock budget, so even slow routines finish promptly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One untimed warm-up call.
        black_box(routine());
        let budget = Duration::from_millis(500);
        let started = Instant::now();
        let mut iters = 0u32;
        while iters < self.sample_size as u32 && started.elapsed() < budget {
            black_box(routine());
            iters += 1;
        }
        self.report = Some(started.elapsed() / iters.max(1));
    }
}

/// Registers benchmark functions under a group name, mirroring
/// upstream's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a benchmark binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // `cargo test` executes harness-less bench binaries with
            // `--test`; there is nothing to test here, so exit quickly.
            if ::std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_a_measurement() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("selftest");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        group.finish();
        // Warm-up plus at least one timed iteration.
        assert!(calls >= 2);
    }
}

//! Offline stand-in for `serde_json`.
//!
//! Provides [`to_string`], [`to_string_pretty`], and [`from_str`] over
//! the vendored `serde` value tree. Properties this workspace relies on:
//!
//! * integers parse exactly (never through `f64`), so `u64` seeds and
//!   digests survive a round trip bit-for-bit;
//! * floats print with Rust's `Display` (shortest representation that
//!   round-trips), and non-finite floats are encoded as the strings
//!   `"NaN"`, `"inf"`, and `"-inf"` (JSON has no literal for them; the
//!   vendored serde's `as_f64` accepts these back);
//! * map entries keep insertion order, so output is deterministic.

#![warn(missing_docs)]

use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A JSON syntax or shape error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::value::Error> for Error {
    fn from(e: serde::value::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as compact JSON text.
///
/// # Errors
///
/// Never fails for this implementation; the `Result` mirrors upstream's
/// signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON text (two-space indent).
///
/// # Errors
///
/// Never fails for this implementation; the `Result` mirrors upstream's
/// signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or when the parsed value does not
/// match `T`'s shape.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(x) => {
            let _ = write!(out, "{x}");
        }
        Value::Int(x) => {
            let _ = write!(out, "{x}");
        }
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_break(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_nan() {
        out.push_str("\"NaN\"");
    } else if f == f64::INFINITY {
        out.push_str("\"inf\"");
    } else if f == f64::NEG_INFINITY {
        out.push_str("\"-inf\"");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a trailing `.0` so the value reads as a float.
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.parse_unicode_escape()?);
                            continue;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `{other:?}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 code point from a
                    // bounded window (a code point is at most 4 bytes).
                    // Validating the whole remaining input per character
                    // makes parsing quadratic in document size.
                    let end = self.bytes.len().min(self.pos + 4);
                    let chunk = &self.bytes[self.pos..end];
                    let c = match std::str::from_utf8(chunk) {
                        Ok(s) => s.chars().next(),
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&chunk[..e.valid_up_to()])
                                .ok()
                                .and_then(|s| s.chars().next())
                        }
                        Err(_) => None,
                    };
                    match c {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return Err(Error::new("invalid UTF-8 in string")),
                    }
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_unicode_escape(&mut self) -> Result<char, Error> {
        let first = self.parse_hex4()?;
        // Surrogate pair handling for characters outside the BMP.
        if (0xD800..0xDC00).contains(&first) {
            if !self.eat_keyword("\\u") {
                return Err(Error::new("unpaired surrogate in \\u escape"));
            }
            let second = self.parse_hex4()?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(Error::new("invalid low surrogate in \\u escape"));
            }
            let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
            char::from_u32(code).ok_or_else(|| Error::new("invalid \\u escape"))
        } else {
            char::from_u32(first).ok_or_else(|| Error::new("invalid \\u escape"))
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let text = std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            let f: f64 = text
                .parse()
                .map_err(|_| Error::new(format!("invalid number `{text}`")))?;
            Ok(Value::Float(f))
        } else if negative {
            // Exact integer path: never routed through f64 while in range.
            match text.parse::<i64>() {
                Ok(x) => Ok(Value::Int(x)),
                Err(_) => self.parse_overflowing_integer(text),
            }
        } else {
            match text.parse::<u64>() {
                Ok(x) => Ok(Value::UInt(x)),
                Err(_) => self.parse_overflowing_integer(text),
            }
        }
    }

    /// Handles integer literals wider than 64 bits (Rust's float `Display`
    /// prints large magnitudes without an exponent) by falling back to f64.
    fn parse_overflowing_integer(&self, text: &str) -> Result<Value, Error> {
        text.parse::<f64>()
            .ok()
            .filter(|f| f.is_finite())
            .map(Value::Float)
            .ok_or_else(|| Error::new(format!("number `{text}` out of range")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_integers_round_trip_exactly() {
        let seed: u64 = 0x9E37_79B9_7F4A_7C15;
        let text = to_string(&seed).unwrap();
        assert_eq!(text, seed.to_string());
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, seed);
    }

    #[test]
    fn floats_round_trip() {
        for f in [0.1, 1.0, -2.5, 1e-12, 123456.789, f64::MAX] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f, "round-tripping {f} via {text}");
        }
    }

    #[test]
    fn non_finite_floats_use_string_encoding() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "\"inf\"");
        let back: f64 = from_str("\"-inf\"").unwrap();
        assert_eq!(back, f64::NEG_INFINITY);
        let nan: f64 = from_str("\"NaN\"").unwrap();
        assert!(nan.is_nan());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nbreak \"quoted\" \\slash\\ unicode \u{1F600}";
        let text = to_string(s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
        let emoji: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(emoji, "\u{1F600}");
    }

    #[test]
    fn pretty_printing_is_parseable_and_indented() {
        let value = vec![(1u32, 2.5f64), (3, 4.5)];
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<(u32, f64)> = from_str(&pretty).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }

    #[test]
    fn megabyte_scale_documents_parse_quickly() {
        // String decoding must stay linear in document size: each
        // character decode may only look at a bounded window, never the
        // whole remaining input. Before that held, this multi-megabyte
        // parse was quadratic and took minutes.
        let doc = to_string(&vec![("key_\u{00e9}".to_string(), 1.5f64); 80_000]).unwrap();
        assert!(doc.len() > 1_000_000, "doc is {} bytes", doc.len());
        let back: Vec<(String, f64)> = from_str(&doc).unwrap();
        assert_eq!(back.len(), 80_000);
        assert_eq!(back[79_999].0, "key_\u{00e9}");
    }
}

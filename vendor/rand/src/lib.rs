//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the small slice of `rand` it actually uses:
//!
//! * [`RngCore`], [`SeedableRng`], and the [`Rng`] extension trait with
//!   `gen::<f64>()`, `gen::<bool>()`, and `gen_range(lo..hi)`;
//! * [`rngs::StdRng`], here a xoshiro256++ generator seeded through
//!   SplitMix64 — deterministic, platform-independent, and statistically
//!   strong enough for every simulation and test in this workspace.
//!
//! The concrete output stream differs from upstream `rand`'s ChaCha-based
//! `StdRng`; nothing in this repository depends on upstream's exact
//! stream, only on determinism and distributional quality.

#![warn(missing_docs)]

use core::ops::Range;

/// Error type returned by [`RngCore::try_fill_bytes`].
///
/// The vendored generators are infallible, so this is never constructed
/// outside of tests; it exists to keep the upstream signature.
#[derive(Debug)]
pub struct Error;

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator (upstream `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure.
    ///
    /// # Errors
    ///
    /// Never fails for the vendored generators.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A generator seedable from a fixed-size byte seed or a `u64`.
pub trait SeedableRng: Sized {
    /// The byte-seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (the same scheme upstream `rand` uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range using `rng`.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample(rng);
        let x = self.start + u * (self.end - self.start);
        // Floating-point rounding can land exactly on `end`; fold it back.
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible at these span sizes and the stream stays
                // deterministic.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = self.end.wrapping_sub(self.start) as u64;
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

signed_sample_range!(i8, i16, i32, i64, isize);

/// Convenience extension methods over [`RngCore`] (upstream `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, R2: SampleRange<T>>(&mut self, range: R2) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// Samples `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Upstream `StdRng` is ChaCha-based; the exact stream is explicitly
    /// unspecified there, and nothing here relies on it.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // A xoshiro state of all zeros is a fixed point; SplitMix64
            // seeding never produces it, but guard direct byte seeds too.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_is_unit_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(3.0..7.0);
            assert!((3.0..7.0).contains(&x));
            let i = rng.gen_range(0usize..5);
            assert!(i < 5);
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(rng.try_fill_bytes(&mut buf).is_ok());
    }

    #[test]
    fn integer_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a compact serialization framework under serde's names. The
//! data model is a concrete JSON-like tree ([`value::Value`]) instead of
//! upstream's visitor architecture:
//!
//! * [`Serialize`] converts a value into a [`value::Value`];
//! * [`Deserialize`] reconstructs a value from a [`value::Value`];
//! * `#[derive(Serialize, Deserialize)]` (from the vendored
//!   `serde_derive`) supports named/tuple structs and externally-tagged
//!   enums, plus the `#[serde(transparent)]` and `#[serde(default)]`
//!   attributes used in this repository.
//!
//! The JSON text layer lives in the vendored `serde_json`.

#![warn(missing_docs)]

pub mod value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use value::{Error, Value};

/// A value convertible into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// A value reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree does not match `Self`'s shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::mismatch("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64().ok_or_else(|| Error::mismatch("unsigned integer", v))?;
                <$t>::try_from(raw).map_err(|_| Error::new(format!(
                    "integer {raw} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let raw = v
            .as_u64()
            .ok_or_else(|| Error::mismatch("unsigned integer", v))?;
        usize::try_from(raw)
            .map_err(|_| Error::new(format!("integer {raw} out of range for usize")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = i64::from(*self);
                if x >= 0 { Value::UInt(x as u64) } else { Value::Int(x) }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64().ok_or_else(|| Error::mismatch("integer", v))?;
                <$t>::try_from(raw).map_err(|_| Error::new(format!(
                    "integer {raw} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        let x = *self as i64;
        if x >= 0 {
            Value::UInt(x as u64)
        } else {
            Value::Int(x)
        }
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let raw = v.as_i64().ok_or_else(|| Error::mismatch("integer", v))?;
        isize::try_from(raw)
            .map_err(|_| Error::new(format!("integer {raw} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::mismatch("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::mismatch("number", v))? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::mismatch("single-character string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::mismatch("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const ARITY: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Seq(items) if items.len() == ARITY => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::mismatch("tuple sequence", other)),
                }
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Types usable as JSON map keys (stringified, matching `serde_json`'s
/// integer-key convention).
pub trait MapKey: Sized + Ord {
    /// Renders the key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses the key back from a JSON object key.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] if the text does not parse as `Self`.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse()
                    .map_err(|_| Error::new(format!("invalid map key `{s}`")))
            }
        }
    )*};
}

impl_int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::mismatch("map", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::value::Value;
    use super::{Deserialize, Serialize};

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn numbers_cross_convert() {
        // An integral float deserializes into integer types and back.
        assert_eq!(u64::from_value(&Value::Float(30.0)).unwrap(), 30);
        assert_eq!(f64::from_value(&Value::UInt(30)).unwrap(), 30.0);
        assert_eq!(f64::from_value(&Value::Int(-3)).unwrap(), -3.0);
        assert!(u32::from_value(&Value::Float(1.5)).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let xs = vec![(1u64, 2.5f64), (3, 4.5)];
        let back: Vec<(u64, f64)> = Vec::from_value(&xs.to_value()).unwrap();
        assert_eq!(back, xs);

        let opt: Option<u32> = None;
        assert_eq!(opt.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::UInt(5)).unwrap(), Some(5));

        let mut map = std::collections::BTreeMap::new();
        map.insert(10u64, 0.25f64);
        let back: std::collections::BTreeMap<u64, f64> =
            Deserialize::from_value(&map.to_value()).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn u64_values_survive_exactly() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }
}

//! The JSON-like value tree used as this framework's data model.

/// A JSON-like value.
///
/// `Map` preserves insertion order (struct field order, for derived
/// impls), which keeps serialized output — and therefore content
/// digests computed over it — deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (exact up to `u64::MAX`).
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in a `Map` value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view as `u64`, accepting integral floats.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(x) => Some(x),
            Value::Int(x) => u64::try_from(x).ok(),
            Value::Float(f) if f >= 0.0 && f <= u64::MAX as f64 && f.fract() == 0.0 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// Numeric view as `i64`, accepting integral floats.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(x) => Some(x),
            Value::UInt(x) => i64::try_from(x).ok(),
            Value::Float(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// Numeric view as `f64`.
    ///
    /// Accepts the string encodings `"NaN"`, `"inf"`, and `"-inf"` that
    /// the vendored `serde_json` emits for non-finite floats.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::UInt(x) => Some(*x as f64),
            Value::Int(x) => Some(*x as f64),
            Value::Str(s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }

    /// A short name of this value's kind, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

// `Value` round-trips through itself, so callers can parse JSON whose
// shape is only known at runtime (e.g. heterogeneous report files).
impl crate::Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl crate::Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Serialization/deserialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    #[must_use]
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// Creates a "expected X, found Y" error.
    #[must_use]
    pub fn mismatch(expected: &str, found: &Value) -> Self {
        Error(format!("expected {expected}, found {}", found.kind()))
    }

    /// Prefixes the message with a field/variant context.
    #[must_use]
    pub fn context(self, what: &str) -> Self {
        Error(format!("{what}: {}", self.0))
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.clone().sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A strategy for vectors whose length lies in `size` and whose elements
/// come from `element`.
#[must_use]
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec length range");
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_and_elements_in_range() {
        let mut rng = TestRng::from_name("vecs");
        let strategy = vec(10u32..20, 2..6);
        for _ in 0..500 {
            let v = strategy.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| (10..20).contains(x)));
        }
    }
}

//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API this workspace uses:
//! the [`proptest!`] macro, `prop_assert*` macros, [`prop_oneof!`],
//! numeric-range/tuple/`Just`/`prop_map`/`any`/`collection::vec`
//! strategies, and [`test_runner::ProptestConfig`].
//!
//! Unlike upstream, generation is purely random sampling from a
//! deterministic per-test RNG (seeded from the test's name): there is no
//! shrinking. Failures therefore report the failing inputs via the
//! assertion message rather than a minimized counterexample.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The commonly used subset of the API, mirroring `proptest::prelude`.
pub mod prelude {
    /// Alias letting `prop::collection::vec(...)` resolve, as upstream's
    /// prelude does.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]`-style function that samples its arguments from the
/// given strategies for `ProptestConfig::cases` iterations.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    let ($($pat,)*) = (
                        $($crate::strategy::Strategy::sample(&($strategy), &mut __rng),)*
                    );
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__e) = __outcome {
                        ::std::panic!(
                            "property `{}` failed on case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __e
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strategy),*) $body
            )*
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (rather than panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

/// Asserts two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l
                ),
            ));
        }
    }};
}

/// Combines strategies of a common value type, choosing one uniformly at
/// random per sample (upstream's weighted form is not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::DynStrategy::new($strategy)),+
        ])
    };
}

//! Test-runner plumbing: configuration, the deterministic RNG, and the
//! case-failure error type.

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Matches upstream's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (produced by the `prop_assert*` macros).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic RNG driving sampling: a SplitMix64 stream seeded
/// from the property's name, so every run of the suite explores the same
/// cases (there is no shrinking to recover a failing input otherwise).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test name via FNV-1a.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next 64 uniform random bits (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via the multiply-shift reduction.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("alpha");
        let mut c = TestRng::from_name("beta");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut rng = TestRng::from_name("unit");
        for _ in 0..10_000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}

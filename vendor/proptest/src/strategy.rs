//! Strategies: samplable descriptions of value spaces.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of a given type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from this strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }
}

/// A strategy always yielding clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.sample(rng))
    }
}

/// A boxed strategy, erasing the concrete combinator type. Used by
/// [`prop_oneof!`](crate::prop_oneof) to mix heterogeneous strategies
/// over a common value type.
pub struct DynStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> DynStrategy<T> {
    /// Boxes a concrete strategy.
    pub fn new<S>(strategy: S) -> Self
    where
        S: Strategy<Value = T> + 'static,
    {
        DynStrategy {
            inner: Box::new(strategy),
        }
    }
}

impl<T> Strategy for DynStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample(rng)
    }
}

/// A uniform choice among several strategies of the same value type.
pub struct Union<T> {
    options: Vec<DynStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<DynStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------------

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        let x = self.start + rng.unit_f64() * (self.end - self.start);
        // Guard against landing exactly on `end` through rounding.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        let wide = (f64::from(self.start)..f64::from(self.end)).sample(rng) as f32;
        if wide >= self.end {
            self.start
        } else {
            wide
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                // i128 arithmetic covers the full span of every 64-bit
                // integer type, signed or unsigned.
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = rng.below(span);
                (self.start as i128 + i128::from(offset)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..5_000 {
            let x = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&x));
            let y = (-5i64..5).sample(&mut rng);
            assert!((-5..5).contains(&y));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn map_and_just_compose() {
        let mut rng = TestRng::from_name("compose");
        let s = Just(21u64).prop_map(|x| x * 2);
        assert_eq!(s.sample(&mut rng), 42);
    }

    #[test]
    fn union_draws_every_option() {
        let mut rng = TestRng::from_name("union");
        let s = Union::new(vec![
            DynStrategy::new(Just(1u8)),
            DynStrategy::new(Just(2u8)),
            DynStrategy::new(Just(3u8)),
        ]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.sample(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}

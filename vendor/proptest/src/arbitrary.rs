//! The `any::<T>()` entry point for types with a canonical strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::from_name("bools");
        let strategy = any::<bool>();
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[usize::from(strategy.sample(&mut rng))] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
